package xen

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Options configures the hypervisor. Zero fields take the defaults matching
// Xen's credit1 scheduler and the paper's dual-core 2.66 GHz Xeon host.
type Options struct {
	NumPCPUs     int      // physical CPUs (default 2)
	Timeslice    sim.Time // scheduling quantum (default 30ms)
	TickPeriod   sim.Time // credit-burn tick (default 10ms)
	AcctPeriod   sim.Time // credit re-allotment period (default 30ms)
	SamplePeriod sim.Time // utilization sampling period (default 1s; 0 disables)
	BoostWindow  sim.Time // how long a VCPU may run at BOOST before demotion (default one tick)
	MaxFreqMHz   int      // top DVFS operating frequency (default 2666, the 2.66 GHz Xeon)
}

func (o *Options) applyDefaults() {
	if o.NumPCPUs == 0 {
		o.NumPCPUs = 2
	}
	if o.Timeslice == 0 {
		o.Timeslice = 30 * sim.Millisecond
	}
	if o.TickPeriod == 0 {
		o.TickPeriod = 10 * sim.Millisecond
	}
	if o.AcctPeriod == 0 {
		o.AcctPeriod = 30 * sim.Millisecond
	}
	if o.SamplePeriod == 0 {
		o.SamplePeriod = sim.Second
	}
	if o.BoostWindow == 0 {
		o.BoostWindow = 10 * sim.Millisecond
	}
	if o.MaxFreqMHz == 0 {
		o.MaxFreqMHz = 2666
	}
}

// PCPU is a physical CPU of the host.
type PCPU struct {
	id      int
	current *VCPU
}

// ID returns the physical CPU index.
func (p *PCPU) ID() int { return p.id }

// Current returns the VCPU currently running on the PCPU, or nil when idle.
func (p *PCPU) Current() *VCPU { return p.current }

// Hypervisor is the x86 island's resource manager: it owns the physical
// CPUs, the domains, and the credit scheduler state.
type Hypervisor struct {
	sim     *sim.Simulator
	opts    Options
	pcpus   []*PCPU
	domains []*Domain

	// Runnable VCPUs, one FIFO per priority class (index = Priority).
	runq    [3][]*VCPU
	seq     uint64
	started bool

	// DVFS: freqMHz/maxMHz form the island-wide operating point as an exact
	// integer rational. Task progress retires at ran*freq/max (per-VCPU
	// residues keep the division exact across charge boundaries) while
	// credits and utilization always burn wall-clock time; at
	// freqMHz == maxMHz the arithmetic reduces to the unscaled identity
	// byte-for-byte.
	//lint:decision
	freqMHz int64
	maxMHz  int64

	stopFns []func()
	tracer  *trace.Tracer

	preemptions uint64
	schedules   uint64
}

// SetTracer installs a structured-event tracer (nil disables tracing).
func (hv *Hypervisor) SetTracer(t *trace.Tracer) { hv.tracer = t }

// New creates a hypervisor on the given simulator. Call Start after creating
// the initial domains.
func New(s *sim.Simulator, opts Options) *Hypervisor {
	opts.applyDefaults()
	hv := &Hypervisor{sim: s, opts: opts,
		freqMHz: int64(opts.MaxFreqMHz), maxMHz: int64(opts.MaxFreqMHz)}
	for i := 0; i < opts.NumPCPUs; i++ {
		hv.pcpus = append(hv.pcpus, &PCPU{id: i})
	}
	return hv
}

// Simulator returns the driving simulator.
func (hv *Hypervisor) Simulator() *sim.Simulator { return hv.sim }

// Options returns the active (defaulted) configuration.
func (hv *Hypervisor) Options() Options { return hv.opts }

// PCPUs returns the physical CPUs.
func (hv *Hypervisor) PCPUs() []*PCPU { return hv.pcpus }

// Domains returns all domains in creation order (Dom0 first, if created
// first).
func (hv *Hypervisor) Domains() []*Domain { return hv.domains }

// Preemptions returns how many times a running VCPU was preempted by a
// higher-priority one.
func (hv *Hypervisor) Preemptions() uint64 { return hv.preemptions }

// Schedules returns how many VCPU dispatch decisions were made.
func (hv *Hypervisor) Schedules() uint64 { return hv.schedules }

// CreateDomain creates a domain with the given name, credit weight, and
// number of VCPUs. Domains are numbered in creation order starting at 0, so
// create the privileged control domain (Dom0) first.
func (hv *Hypervisor) CreateDomain(name string, weight, nvcpus int) *Domain {
	if weight <= 0 {
		panic(fmt.Sprintf("xen: domain %q with non-positive weight %d", name, weight))
	}
	if nvcpus <= 0 {
		panic(fmt.Sprintf("xen: domain %q with %d VCPUs", name, nvcpus))
	}
	d := &Domain{
		hv:     hv,
		id:     len(hv.domains),
		name:   name,
		weight: weight,
		meter:  stats.NewUtilizationMeter(name, hv.sim.Now()),
	}
	for i := 0; i < nvcpus; i++ {
		d.vcpus = append(d.vcpus, &VCPU{dom: d, id: i, state: stateBlocked, prio: PrioUnder})
	}
	hv.domains = append(hv.domains, d)
	return d
}

// DomainByName returns the domain with the given name, or nil.
func (hv *Hypervisor) DomainByName(name string) *Domain {
	for _, d := range hv.domains {
		if d.name == name {
			return d
		}
	}
	return nil
}

// Start arms the scheduler's periodic timers (credit ticks, accounting,
// utilization sampling). It must be called exactly once.
func (hv *Hypervisor) Start() {
	if hv.started {
		panic("xen: Start called twice")
	}
	hv.started = true
	hv.stopFns = append(hv.stopFns,
		hv.sim.Ticker(hv.opts.TickPeriod, hv.tick),
		hv.sim.Ticker(hv.opts.AcctPeriod, hv.account),
	)
	if hv.opts.SamplePeriod > 0 {
		hv.stopFns = append(hv.stopFns, hv.sim.Ticker(hv.opts.SamplePeriod, func() {
			now := hv.sim.Now()
			for _, d := range hv.domains {
				hv.syncRunMeter(d)
				d.meter.Sample(now)
			}
		}))
	}
}

// Stop cancels the scheduler's periodic timers (used by short-lived tests).
func (hv *Hypervisor) Stop() {
	for _, fn := range hv.stopFns {
		fn()
	}
	hv.stopFns = nil
}

// syncRunMeter folds the in-progress run interval of d's running VCPUs into
// the utilization meter so that sampling sees up-to-date numbers.
func (hv *Hypervisor) syncRunMeter(d *Domain) {
	now := hv.sim.Now()
	for _, v := range d.vcpus {
		if v.state == stateRunning && now > v.runStart {
			hv.chargeRun(v, now)
		}
	}
}

// chargeRun accounts the run interval [v.runStart, now) to the VCPU: burns
// credits, meters utilization, advances task progress, and restarts the
// interval clock at now.
func (hv *Hypervisor) chargeRun(v *VCPU, now sim.Time) {
	ran := now - v.runStart
	if ran <= 0 {
		return
	}
	v.credits -= ran
	v.dom.usedInAcct += ran
	v.dom.active = true
	v.dom.meter.Record(v.runStart, now)
	if v.prio == PrioBoost {
		v.boostRan += ran
	}
	if v.current != nil {
		v.dom.chargeLabel(v.current.Label, ran)
	}
	if v.current != nil {
		progress := ran
		if hv.freqMHz != hv.maxMHz {
			// Scaled retirement: carry the division remainder in the VCPU's
			// residue so progress is exact across charge boundaries.
			num := int64(ran)*hv.freqMHz + v.freqResidue
			progress = sim.Time(num / hv.maxMHz)
			v.freqResidue = num % hv.maxMHz
		}
		v.current.remaining -= progress
		if v.current.remaining < 0 {
			v.current.remaining = 0
		}
	}
	v.runStart = now
}

// runProgress returns the task progress of v's in-flight run interval at
// now without committing it (the read-only view Backlog needs).
func (hv *Hypervisor) runProgress(v *VCPU, now sim.Time) sim.Time {
	ran := now - v.runStart
	if ran <= 0 {
		return 0
	}
	if hv.freqMHz == hv.maxMHz {
		return ran
	}
	return sim.Time((int64(ran)*hv.freqMHz + v.freqResidue) / hv.maxMHz)
}

// wallFor returns the wall-clock time v needs on a PCPU to retire its
// current task's remaining demand at the island's operating frequency: the
// smallest interval whose scaled progress covers the remainder.
func (hv *Hypervisor) wallFor(v *VCPU) sim.Time {
	rem := v.current.remaining
	if hv.freqMHz == hv.maxMHz {
		return rem
	}
	num := int64(rem)*hv.maxMHz - v.freqResidue
	if num <= 0 {
		return 1
	}
	return sim.Time((num + hv.freqMHz - 1) / hv.freqMHz)
}

// FrequencyMHz returns the island's current operating frequency.
func (hv *Hypervisor) FrequencyMHz() int { return int(hv.freqMHz) }

// MaxFrequencyMHz returns the island's top operating frequency.
func (hv *Hypervisor) MaxFrequencyMHz() int { return int(hv.maxMHz) }

// setFrequency commits a new island-wide operating frequency: every
// in-progress run interval is charged at the old frequency first, then the
// running VCPUs' slice events are re-armed at the new retirement rate.
// Actuate through Ctl.SetFrequencyMHz, which taps the transition into the
// flight recorder.
func (hv *Hypervisor) setFrequency(mhz int) error {
	if mhz <= 0 || int64(mhz) > hv.maxMHz {
		return fmt.Errorf("xen: frequency %d MHz outside (0, %d]", mhz, hv.maxMHz)
	}
	if int64(mhz) == hv.freqMHz {
		return nil
	}
	now := hv.sim.Now()
	for _, p := range hv.pcpus {
		if p.current != nil {
			hv.chargeRun(p.current, now)
		}
	}
	hv.freqMHz = int64(mhz)
	for _, p := range hv.pcpus {
		v := p.current
		if v == nil || v.current == nil {
			continue
		}
		if v.sliceEv != nil {
			v.sliceEv.Cancel()
			v.sliceEv = nil
		}
		hv.armSliceEvent(p, v)
	}
	return nil
}

// enqueue inserts a runnable VCPU at the tail of its priority class.
func (hv *Hypervisor) enqueue(v *VCPU) {
	v.state = stateRunnable
	v.queuedSeq = hv.seq
	hv.seq++
	hv.runq[v.prio] = append(hv.runq[v.prio], v)
}

// dequeue removes v from the runqueue, if present.
func (hv *Hypervisor) dequeue(v *VCPU) {
	q := hv.runq[v.prio]
	for i, x := range q {
		if x == v {
			copy(q[i:], q[i+1:])
			q[len(q)-1] = nil
			hv.runq[v.prio] = q[:len(q)-1]
			return
		}
	}
}

// bestQueued returns the highest-priority queued VCPU without removing it.
func (hv *Hypervisor) bestQueued() *VCPU {
	for p := int(PrioBoost); p >= int(PrioOver); p-- {
		if len(hv.runq[p]) > 0 {
			return hv.runq[p][0]
		}
	}
	return nil
}

// popBestFor removes and returns the highest-priority queued VCPU allowed
// to run on PCPU p, or nil.
func (hv *Hypervisor) popBestFor(p *PCPU) *VCPU {
	for pr := int(PrioBoost); pr >= int(PrioOver); pr-- {
		q := hv.runq[pr]
		for i, v := range q {
			if !v.AllowedOn(p.id) {
				continue
			}
			copy(q[i:], q[i+1:])
			q[len(q)-1] = nil
			hv.runq[pr] = q[:len(q)-1]
			return v
		}
	}
	return nil
}

// dispatch fills idle PCPUs from the runqueue, honoring affinity.
func (hv *Hypervisor) dispatch() {
	for _, p := range hv.pcpus {
		if p.current != nil {
			continue
		}
		v := hv.popBestFor(p)
		if v == nil {
			continue
		}
		hv.startRun(p, v)
	}
}

// startRun puts v on PCPU p and schedules its next natural stop point
// (timeslice expiry or current-task completion).
func (hv *Hypervisor) startRun(p *PCPU, v *VCPU) {
	hv.schedules++
	if hv.tracer.Enabled(trace.CatSched) {
		hv.tracer.Emit(trace.CatSched, "run %s/%d on pcpu%d prio=%v credits=%v",
			v.dom.name, v.id, p.id, v.prio, v.credits)
	}
	p.current = v
	v.pcpu = p
	v.state = stateRunning
	v.runStart = hv.sim.Now()
	if v.current == nil {
		v.current = v.dom.nextTask()
	}
	if v.current == nil {
		// Nothing to do after all; block immediately.
		hv.blockCurrent(p)
		return
	}
	hv.armSliceEvent(p, v)
}

// armSliceEvent schedules the earlier of task completion and slice expiry.
func (hv *Hypervisor) armSliceEvent(p *PCPU, v *VCPU) {
	runFor := hv.opts.Timeslice
	if need := hv.wallFor(v); need < runFor {
		runFor = need
	}
	if runFor <= 0 {
		runFor = 1 // degenerate: finish on the next instant
	}
	v.sliceEv = hv.sim.After(runFor, func() { hv.sliceExpired(p, v) })
}

// sliceExpired handles the natural end of a run interval.
func (hv *Hypervisor) sliceExpired(p *PCPU, v *VCPU) {
	if p.current != v {
		return // stale event (should have been cancelled)
	}
	now := hv.sim.Now()
	hv.chargeRun(v, now)
	v.sliceEv = nil

	// Complete as many tasks as finished exactly here.
	if v.current != nil && v.current.remaining == 0 {
		hv.completeTask(v)
	}
	if v.current == nil {
		v.current = v.dom.nextTask()
	}
	if v.current == nil {
		hv.blockCurrent(p)
		return
	}
	// Timeslice used up (or more work remains): recompute priority, requeue
	// at the tail, and let the scheduler pick the next VCPU.
	hv.deschedule(p, v)
	hv.dispatch()
}

// completeTask finishes v's current task. The completion callback is
// deferred to a fresh event: callbacks submit work to other domains, which
// can preempt the very PCPU whose scheduling operation is still in
// progress, so running them synchronously here would corrupt scheduler
// state mid-operation.
func (hv *Hypervisor) completeTask(v *VCPU) {
	t := v.current
	v.current = nil
	v.dom.tasksDone++
	if t.OnComplete != nil {
		hv.sim.After(0, t.OnComplete)
	}
}

// deschedule removes v from its PCPU and requeues it as runnable.
func (hv *Hypervisor) deschedule(p *PCPU, v *VCPU) {
	p.current = nil
	v.pcpu = nil
	hv.refreshPriority(v)
	hv.enqueue(v)
}

// blockCurrent blocks the VCPU running on p (its domain queue is empty) and
// dispatches a replacement.
func (hv *Hypervisor) blockCurrent(p *PCPU) {
	v := p.current
	p.current = nil
	v.pcpu = nil
	v.state = stateBlocked
	v.blockedAt = hv.sim.Now()
	v.boostRan = 0
	if v.sliceEv != nil {
		v.sliceEv.Cancel()
		v.sliceEv = nil
	}
	hv.dispatch()
}

// refreshPriority recomputes a non-boosted VCPU's class from its credit
// balance, and demotes BOOST VCPUs that have used their boost window.
func (hv *Hypervisor) refreshPriority(v *VCPU) {
	if v.prio == PrioBoost && v.boostRan < hv.opts.BoostWindow {
		return // still within its boost window
	}
	v.boostRan = 0
	if v.credits >= 0 {
		v.prio = PrioUnder
	} else {
		v.prio = PrioOver
	}
}

// wakeOne wakes a blocked VCPU of d, if any, applying BOOST semantics.
func (hv *Hypervisor) wakeOne(d *Domain) {
	for _, v := range d.vcpus {
		if v.state != stateBlocked {
			continue
		}
		switch {
		case v.credits >= 0 && hv.sim.Now() > v.blockedAt:
			// Waking from a real sleep with credit remaining earns the
			// transient BOOST class (idle domains hold at zero credits and
			// still qualify, matching credit1's treatment of inactive
			// domains). Zero-duration blocks — a domain picking up
			// back-to-back work — do not count as sleeping and keep their
			// credit-derived priority, as they would on real hardware where
			// the guest never actually idles.
			v.prio = PrioBoost
			v.boostRan = 0
		case v.credits >= 0:
			v.prio = PrioUnder
		default:
			v.prio = PrioOver
		}
		hv.enqueue(v)
		hv.maybePreempt()
		return
	}
}

// Boost promotes a domain's VCPUs to BOOST priority immediately, preempting
// lower-priority VCPUs. This implements the preemptive half of the paper's
// Trigger mechanism on the x86 island ("boost the dequeuing guest VM's
// position in the runqueue").
func (hv *Hypervisor) Boost(d *Domain) {
	hv.tracer.Emit(trace.CatSched, "boost %s", d.name)
	for _, v := range d.vcpus {
		switch v.state {
		case stateRunnable:
			hv.dequeue(v)
			v.prio = PrioBoost
			v.boostRan = 0
			hv.enqueue(v)
		case stateBlocked, stateRunning:
			// A blocked VCPU will be boosted on wake by its credit balance;
			// force it regardless of credits by pre-setting priority.
			v.prio = PrioBoost
			v.boostRan = 0
		case stateParked:
			// Cap enforcement outranks a boost: a parked VCPU stays parked
			// until its domain drops back under its cap.
		}
	}
	hv.maybePreempt()
}

// maybePreempt preempts the lowest-priority running VCPU if a queued VCPU
// outranks it, honoring the queued VCPU's affinity.
func (hv *Hypervisor) maybePreempt() {
	for {
		hv.dispatch() // place onto any idle PCPUs first
		best := hv.bestQueued()
		if best == nil {
			return
		}
		// Find the weakest running VCPU among the PCPUs best may use.
		var victim *PCPU
		for _, p := range hv.pcpus {
			if p.current == nil || !best.AllowedOn(p.id) {
				continue
			}
			if victim == nil || p.current.prio < victim.current.prio {
				victim = p
			}
		}
		if victim == nil || victim.current.prio >= best.prio {
			return
		}
		hv.preempt(victim)
	}
}

// preempt stops the VCPU running on p and requeues it.
func (hv *Hypervisor) preempt(p *PCPU) {
	v := p.current
	hv.preemptions++
	if hv.tracer.Enabled(trace.CatSched) {
		hv.tracer.Emit(trace.CatSched, "preempt %s/%d on pcpu%d", v.dom.name, v.id, p.id)
	}
	hv.chargeRun(v, hv.sim.Now())
	if v.sliceEv != nil {
		v.sliceEv.Cancel()
		v.sliceEv = nil
	}
	if v.current != nil && v.current.remaining == 0 {
		hv.completeTask(v)
	}
	hv.deschedule(p, v)
	hv.dispatch()
}

// tick is the 10ms credit-burn tick: it charges running VCPUs, demotes those
// that ran out of credits or out of their boost window, and preempts if the
// queue now holds higher-priority work.
func (hv *Hypervisor) tick() {
	now := hv.sim.Now()
	for _, p := range hv.pcpus {
		v := p.current
		if v == nil {
			continue
		}
		hv.chargeRun(v, now)
		if v.current != nil && v.current.remaining == 0 {
			// Task finished exactly on the tick; complete it and continue
			// with the next one within the same slice.
			if v.sliceEv != nil {
				v.sliceEv.Cancel()
				v.sliceEv = nil
			}
			hv.completeTask(v)
			v.current = v.dom.nextTask()
			if v.current == nil {
				hv.blockCurrent(p)
				continue
			}
			hv.armSliceEvent(p, v)
		}
		old := v.prio
		hv.refreshPriority(v)
		if v.prio != old && v.prio < old {
			// Demoted while running: check whether someone now outranks it.
			if best := hv.bestQueued(); best != nil && best.prio > v.prio {
				hv.preempt(p)
			}
		}
	}
	hv.maybePreempt()
}

// account is the 30ms credit re-allotment: each active domain receives
// credits proportional to its weight, split evenly among its VCPUs, with
// balances clamped to one accounting period. Capped domains that exceeded
// their cap are parked until the next accounting.
func (hv *Hypervisor) account() {
	now := hv.sim.Now()
	// Charge in-progress runs so balances are current.
	for _, p := range hv.pcpus {
		if p.current != nil {
			hv.chargeRun(p.current, now)
		}
	}

	totalWeight := 0
	for _, d := range hv.domains {
		if d.active {
			totalWeight += d.weight
		}
	}
	budget := hv.opts.AcctPeriod * sim.Time(hv.opts.NumPCPUs)
	clamp := hv.opts.AcctPeriod

	for _, d := range hv.domains {
		if d.active && totalWeight > 0 {
			share := sim.Time(float64(budget) * float64(d.weight) / float64(totalWeight))
			if d.cap > 0 {
				capShare := hv.opts.AcctPeriod * sim.Time(d.cap) / 100
				if share > capShare {
					share = capShare
				}
			}
			per := share / sim.Time(len(d.vcpus))
			for _, v := range d.vcpus {
				v.credits += per
				if v.credits > clamp {
					v.credits = clamp
				}
				if v.credits < -clamp {
					v.credits = -clamp
				}
			}
		}

		// Cap enforcement: track the domain's overrun as a debt that is paid
		// down at cap-rate while parked, so the long-run average honors the
		// cap even though parking granularity is one accounting period.
		if d.cap > 0 {
			capTime := hv.opts.AcctPeriod * sim.Time(d.cap) / 100
			d.capDebt += d.usedInAcct - capTime
			if d.capDebt < 0 {
				d.capDebt = 0
			}
			if d.capDebt > 0 {
				hv.parkDomain(d)
			} else {
				hv.unparkDomain(d)
			}
		}
		d.usedInAcct = 0
		d.active = false
		for _, v := range d.vcpus {
			if v.state != stateBlocked && v.state != stateParked {
				d.active = true
			}
		}
	}

	// Re-sort queued VCPUs into their refreshed priority classes.
	var queued []*VCPU
	for p := range hv.runq {
		queued = append(queued, hv.runq[p]...)
		hv.runq[p] = hv.runq[p][:0]
	}
	for _, v := range queued {
		hv.refreshPriority(v)
		hv.enqueue(v)
	}
	hv.maybePreempt()
}

// parkDomain removes a domain's VCPUs from scheduling (cap exceeded).
func (hv *Hypervisor) parkDomain(d *Domain) {
	for _, v := range d.vcpus {
		switch v.state {
		case stateRunnable:
			hv.dequeue(v)
			v.state = stateParked
		case stateRunning:
			p := v.pcpu
			hv.chargeRun(v, hv.sim.Now())
			if v.sliceEv != nil {
				v.sliceEv.Cancel()
				v.sliceEv = nil
			}
			p.current = nil
			v.pcpu = nil
			v.state = stateParked
			hv.dispatch()
		case stateBlocked, stateParked:
			// Not on a runqueue or a PCPU; there is nothing to remove. A
			// blocked VCPU that wakes while the domain is over cap runs
			// until the next accounting period parks it again.
		}
	}
}

// unparkDomain returns parked VCPUs to the runqueue.
func (hv *Hypervisor) unparkDomain(d *Domain) {
	woke := false
	for _, v := range d.vcpus {
		if v.state == stateParked {
			if v.current != nil || len(d.queue) > 0 {
				hv.refreshPriority(v)
				hv.enqueue(v)
				woke = true
			} else {
				v.state = stateBlocked
			}
		}
	}
	if woke {
		hv.maybePreempt()
	}
}

// TotalUtilization returns the summed mean CPU utilization (percent of one
// CPU) of the given domains over [start, now). Pass all guest domains to get
// the paper's Figure 5 / Table 2 "CPU utilization" figure.
func (hv *Hypervisor) TotalUtilization(start sim.Time, domains ...*Domain) float64 {
	now := hv.sim.Now()
	total := 0.0
	for _, d := range domains {
		hv.syncRunMeter(d)
		total += d.meter.MeanUtilization(start, now)
	}
	return total
}
