package xen

import (
	"math"
	"testing"

	"repro/internal/sim"
)

func TestPinVCPURestrictsPlacement(t *testing.T) {
	s, hv := newTestHV(t, 2)
	a := hv.CreateDomain("pinned", 256, 1)
	b := hv.CreateDomain("free", 256, 1)
	ctl := NewCtl(hv)
	if err := ctl.PinVCPU(a.ID(), 0, []int{1}); err != nil {
		t.Fatal(err)
	}
	hv.Start()
	saturate(s, a, 5*sim.Millisecond)
	saturate(s, b, 5*sim.Millisecond)
	// Track where the pinned VCPU runs.
	violations := 0
	stop := s.Ticker(sim.Millisecond, func() {
		v := a.VCPUs()[0]
		if v.Running() && v.pcpu.ID() != 1 {
			violations++
		}
	})
	s.RunUntil(3 * sim.Second)
	stop()
	if violations != 0 {
		t.Fatalf("pinned VCPU observed on forbidden PCPU %d times", violations)
	}
	// Both domains still make full progress (one core each).
	hv.syncRunMeter(a)
	ua := a.Meter().MeanUtilization(0, s.Now())
	if math.Abs(ua-100) > 5 {
		t.Fatalf("pinned domain utilization = %.1f%%, want ~100", ua)
	}
}

func TestPinTwoDomainsToOneCPUShare(t *testing.T) {
	s, hv := newTestHV(t, 2)
	a := hv.CreateDomain("a", 256, 1)
	b := hv.CreateDomain("b", 256, 1)
	ctl := NewCtl(hv)
	if err := ctl.PinVCPU(a.ID(), 0, []int{0}); err != nil {
		t.Fatal(err)
	}
	if err := ctl.PinVCPU(b.ID(), 0, []int{0}); err != nil {
		t.Fatal(err)
	}
	hv.Start()
	saturate(s, a, 5*sim.Millisecond)
	saturate(s, b, 5*sim.Millisecond)
	s.RunUntil(10 * sim.Second)
	hv.syncRunMeter(a)
	hv.syncRunMeter(b)
	ua := a.Meter().MeanUtilization(0, s.Now())
	ub := b.Meter().MeanUtilization(0, s.Now())
	// Both squeezed onto PCPU 0: ~50% each, PCPU 1 idle.
	if math.Abs(ua-50) > 6 || math.Abs(ub-50) > 6 {
		t.Fatalf("pinned shares = %.1f%%, %.1f%%, want ~50/50", ua, ub)
	}
}

func TestPinRunningVCPUMigratesImmediately(t *testing.T) {
	s, hv := newTestHV(t, 2)
	a := hv.CreateDomain("a", 256, 1)
	ctl := NewCtl(hv)
	hv.Start()
	saturate(s, a, 50*sim.Millisecond)
	s.RunUntil(5 * sim.Millisecond)
	v := a.VCPUs()[0]
	if !v.Running() {
		t.Fatal("vcpu not running")
	}
	current := v.pcpu.ID()
	other := 1 - current
	if err := ctl.PinVCPU(a.ID(), 0, []int{other}); err != nil {
		t.Fatal(err)
	}
	// The VCPU was preempted off the forbidden CPU and redispatched.
	s.RunUntil(6 * sim.Millisecond)
	if v.Running() && v.pcpu.ID() != other {
		t.Fatalf("vcpu still on forbidden pcpu %d", v.pcpu.ID())
	}
	if !v.Pinned() {
		t.Fatal("Pinned() = false")
	}
	if err := ctl.UnpinVCPU(a.ID(), 0); err != nil {
		t.Fatal(err)
	}
	if v.Pinned() {
		t.Fatal("Pinned() = true after unpin")
	}
}

func TestPinValidation(t *testing.T) {
	_, hv := newTestHV(t, 2)
	hv.CreateDomain("a", 256, 1)
	ctl := NewCtl(hv)
	if err := ctl.PinVCPU(9, 0, []int{0}); err == nil {
		t.Fatal("unknown domain accepted")
	}
	if err := ctl.PinVCPU(0, 5, []int{0}); err == nil {
		t.Fatal("unknown vcpu accepted")
	}
	if err := ctl.PinVCPU(0, 0, nil); err == nil {
		t.Fatal("empty mask accepted")
	}
	if err := ctl.PinVCPU(0, 0, []int{7}); err == nil {
		t.Fatal("out-of-range pcpu accepted")
	}
	if err := ctl.UnpinVCPU(9, 0); err == nil {
		t.Fatal("unknown domain unpin accepted")
	}
	if err := ctl.UnpinVCPU(0, 5); err == nil {
		t.Fatal("unknown vcpu unpin accepted")
	}
}

func TestAllowedOnDefaults(t *testing.T) {
	_, hv := newTestHV(t, 2)
	d := hv.CreateDomain("a", 256, 1)
	v := d.VCPUs()[0]
	if !v.AllowedOn(0) || !v.AllowedOn(1) {
		t.Fatal("unpinned vcpu not allowed everywhere")
	}
	if v.Pinned() {
		t.Fatal("fresh vcpu pinned")
	}
}

func TestLabeledBusyBreakdown(t *testing.T) {
	s, hv := newTestHV(t, 1)
	d := hv.CreateDomain("dom", 256, 1)
	hv.Start()
	d.SubmitFunc(30*sim.Millisecond, "net-rx", nil)
	d.SubmitFunc(20*sim.Millisecond, "bridge", nil)
	d.SubmitFunc(50*sim.Millisecond, "app", nil)
	s.RunUntil(1 * sim.Second)
	busy := d.LabeledBusy()
	if busy["net-rx"] != 30*sim.Millisecond {
		t.Fatalf("net-rx = %v", busy["net-rx"])
	}
	if busy["bridge"] != 20*sim.Millisecond {
		t.Fatalf("bridge = %v", busy["bridge"])
	}
	if busy["app"] != 50*sim.Millisecond {
		t.Fatalf("app = %v", busy["app"])
	}
	// The per-label sum equals the meter total.
	var sum sim.Time
	for _, v := range busy {
		sum += v
	}
	hv.syncRunMeter(d)
	if sum != d.Meter().Busy() {
		t.Fatalf("label sum %v != meter %v", sum, d.Meter().Busy())
	}
}
