package xen

import (
	"fmt"

	"repro/internal/flight"
)

// Ctl is the hypervisor's management interface, standing in for the
// user-space "XenCtrl interface" hosted by Dom0 in the paper: it tunes
// credit-scheduler behavior and adjusts processor allocation of guest VMs.
// The coordination layer's x86-island agent drives it in response to Tune
// and Trigger messages from remote islands.
type Ctl struct {
	hv  *Hypervisor
	rec *flight.Recorder
}

// NewCtl returns a control interface for hv.
func NewCtl(hv *Hypervisor) *Ctl { return &Ctl{hv: hv} }

// SetFlightRecorder taps effective weight changes and boosts into the
// flight recorder (nil disables).
func (c *Ctl) SetFlightRecorder(r *flight.Recorder) { c.rec = r }

// recordWeight records one effective credit-weight change.
func (c *Ctl) recordWeight(d *Domain, weight int) {
	if c.rec != nil {
		c.rec.Record(flight.Event{
			T: c.hv.sim.Now(), Cat: flight.CatWeight,
			Label: d.Name(), Entity: int32(d.ID()), Arg: int64(weight),
		})
	}
}

// Weight returns the current credit weight of domain id.
func (c *Ctl) Weight(id int) (int, error) {
	d, err := c.domain(id)
	if err != nil {
		return 0, err
	}
	return d.weight, nil
}

// SetWeight sets the credit weight of domain id. The new weight takes
// effect at the next accounting period, exactly as with the real tool.
func (c *Ctl) SetWeight(id, weight int) error {
	if weight <= 0 {
		return fmt.Errorf("xen: invalid weight %d for domain %d", weight, id)
	}
	d, err := c.domain(id)
	if err != nil {
		return err
	}
	if d.weight != weight {
		d.weight = weight
		c.recordWeight(d, weight)
	}
	return nil
}

// AdjustWeight changes the weight of domain id by delta, clamped to
// [min, max]. It returns the new weight. This is the natural target of the
// paper's "weight increase"/"weight decrease" Tune messages.
func (c *Ctl) AdjustWeight(id, delta, min, max int) (int, error) {
	d, err := c.domain(id)
	if err != nil {
		return 0, err
	}
	w := d.weight + delta
	if w < min {
		w = min
	}
	if w > max {
		w = max
	}
	if d.weight != w {
		d.weight = w
		c.recordWeight(d, w)
	}
	return w, nil
}

// FrequencyMHz returns the island's current DVFS operating frequency.
func (c *Ctl) FrequencyMHz() int { return c.hv.FrequencyMHz() }

// SetFrequencyMHz commits an island-wide DVFS operating frequency (the
// xenpm set-scaling-speed equivalent) and taps the transition into the
// flight recorder. In-progress run intervals are charged at the old
// frequency before the new retirement rate takes effect.
func (c *Ctl) SetFrequencyMHz(mhz int) error {
	prev := c.hv.FrequencyMHz()
	if err := c.hv.setFrequency(mhz); err != nil {
		return err
	}
	if c.rec != nil && mhz != prev {
		c.rec.Record(flight.Event{
			T: c.hv.sim.Now(), Cat: flight.CatEnergy, Code: flight.EnergyFreq,
			Label: "x86", Entity: -1, Arg: int64(mhz),
		})
	}
	return nil
}

// SetCap sets the CPU cap of domain id in percent of one CPU (0 = uncapped).
func (c *Ctl) SetCap(id, cap int) error {
	if cap < 0 {
		return fmt.Errorf("xen: invalid cap %d for domain %d", cap, id)
	}
	d, err := c.domain(id)
	if err != nil {
		return err
	}
	d.cap = cap
	return nil
}

// Boost immediately raises domain id's VCPUs to BOOST priority (the Trigger
// mechanism's actuation on the x86 island).
func (c *Ctl) Boost(id int) error {
	d, err := c.domain(id)
	if err != nil {
		return err
	}
	if c.rec != nil {
		c.rec.Record(flight.Event{
			T: c.hv.sim.Now(), Cat: flight.CatBoost,
			Label: d.Name(), Entity: int32(d.ID()),
		})
	}
	c.hv.Boost(d)
	return nil
}

// PinVCPU restricts domain id's VCPU vcpu to the given physical CPUs (the
// xm vcpu-pin equivalent). The change takes effect at the next scheduling
// decision; a VCPU currently running on a now-forbidden PCPU is preempted.
func (c *Ctl) PinVCPU(id, vcpu int, pcpus []int) error {
	d, err := c.domain(id)
	if err != nil {
		return err
	}
	if vcpu < 0 || vcpu >= len(d.vcpus) {
		return fmt.Errorf("xen: domain %d has no VCPU %d", id, vcpu)
	}
	if len(pcpus) == 0 {
		return fmt.Errorf("xen: empty affinity for domain %d VCPU %d", id, vcpu)
	}
	mask := make([]bool, len(c.hv.pcpus))
	for _, p := range pcpus {
		if p < 0 || p >= len(mask) {
			return fmt.Errorf("xen: no physical CPU %d", p)
		}
		mask[p] = true
	}
	v := d.vcpus[vcpu]
	v.affinity = mask
	if v.state == stateRunning && !v.AllowedOn(v.pcpu.id) {
		c.hv.preempt(v.pcpu)
	}
	return nil
}

// UnpinVCPU removes domain id's VCPU affinity mask.
func (c *Ctl) UnpinVCPU(id, vcpu int) error {
	d, err := c.domain(id)
	if err != nil {
		return err
	}
	if vcpu < 0 || vcpu >= len(d.vcpus) {
		return fmt.Errorf("xen: domain %d has no VCPU %d", id, vcpu)
	}
	d.vcpus[vcpu].affinity = nil
	c.hv.maybePreempt()
	return nil
}

// Domains lists the hypervisor's domains (Dom0 first).
func (c *Ctl) Domains() []*Domain { return c.hv.domains }

func (c *Ctl) domain(id int) (*Domain, error) {
	if id < 0 || id >= len(c.hv.domains) {
		return nil, fmt.Errorf("xen: no domain %d", id)
	}
	return c.hv.domains[id], nil
}
