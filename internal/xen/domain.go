// Package xen models the x86 scheduling island of the paper's prototype: a
// multicore host virtualized by a Xen-like hypervisor whose CPU resources
// are divided among domains (VMs) by the credit scheduler.
//
// The credit scheduler follows the published credit1 algorithm (Cherkasova,
// Gupta, Vahdat, "Comparison of the three CPU schedulers in Xen"): domain
// weights are converted into per-accounting-period credit allotments,
// running VCPUs burn credits in proportion to the CPU time they consume,
// credit balance determines the UNDER/OVER priority class, and VCPUs that
// wake with credit remaining receive the transient BOOST priority. The
// BOOST path is what the coordination layer's Trigger mechanism piggybacks
// on; the weight knob is what the Tune mechanism adjusts (via Ctl, the
// stand-in for the user-space "XenCtrl interface" of the paper).
package xen

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/stats"
)

// Priority is a VCPU's scheduling class. Higher values are scheduled first.
type Priority int

// Priority classes, in increasing precedence order.
const (
	PrioOver  Priority = iota // credits exhausted
	PrioUnder                 // credits remaining
	PrioBoost                 // just woken with credits remaining, or triggered
)

// String returns the conventional Xen name for the priority class.
func (p Priority) String() string {
	switch p {
	case PrioOver:
		return "OVER"
	case PrioUnder:
		return "UNDER"
	case PrioBoost:
		return "BOOST"
	default:
		return fmt.Sprintf("Priority(%d)", int(p))
	}
}

// vcpuState tracks where a VCPU is in its lifecycle.
type vcpuState int

const (
	stateBlocked vcpuState = iota
	stateRunnable
	stateRunning
	stateParked // cap enforcement
)

// Task is a unit of CPU demand executed by a domain, typically "process one
// request" or "decode one frame". OnComplete fires in simulation context
// when the demand has been fully consumed.
type Task struct {
	Demand     sim.Time // total CPU time required
	OnComplete func()   // optional completion callback
	Label      string   // optional, for tracing

	remaining sim.Time
	submitted sim.Time
}

// Submitted returns the virtual time at which the task entered the domain's
// queue.
func (t *Task) Submitted() sim.Time { return t.submitted }

// VCPU is a virtual CPU belonging to a domain.
type VCPU struct {
	dom   *Domain
	id    int
	state vcpuState
	prio  Priority

	credits   sim.Time // positive = UNDER, non-positive = OVER
	boostRan  sim.Time // time spent running at BOOST since promotion
	blockedAt sim.Time // when the VCPU last blocked
	affinity  []bool   // allowed PCPUs (nil = any); set via Ctl.PinVCPU
	pcpu      *PCPU    // non-nil while running
	runStart  sim.Time // when the current run interval began
	current   *Task    // task being executed
	sliceEv   *sim.Event
	queuedSeq uint64 // FIFO ordering within a priority class

	// freqResidue carries the remainder of the DVFS progress division
	// (units of MHz*ns, always < maxMHz) so scaled task retirement stays
	// exact across charge boundaries. Zero whenever the island runs at its
	// top frequency.
	freqResidue int64
}

// Domain returns the owning domain.
func (v *VCPU) Domain() *Domain { return v.dom }

// ID returns the VCPU index within its domain.
func (v *VCPU) ID() int { return v.id }

// Priority returns the VCPU's current priority class.
func (v *VCPU) Priority() Priority { return v.prio }

// Credits returns the VCPU's current credit balance, expressed as CPU time.
func (v *VCPU) Credits() sim.Time { return v.credits }

// Running reports whether the VCPU currently occupies a physical CPU.
func (v *VCPU) Running() bool { return v.state == stateRunning }

// AllowedOn reports whether the VCPU may run on physical CPU id.
func (v *VCPU) AllowedOn(pcpu int) bool {
	if v.affinity == nil {
		return true
	}
	return pcpu >= 0 && pcpu < len(v.affinity) && v.affinity[pcpu]
}

// Pinned reports whether the VCPU has a CPU affinity mask installed.
func (v *VCPU) Pinned() bool { return v.affinity != nil }

// Domain is a virtual machine: a weight/cap pair, one or more VCPUs, and a
// FIFO queue of CPU tasks that its VCPUs execute.
type Domain struct {
	hv     *Hypervisor
	id     int
	name   string
	weight int
	cap    int // percent of one CPU; 0 = uncapped
	vcpus  []*VCPU

	queue      []*Task
	meter      *stats.UtilizationMeter
	labelBusy  map[string]sim.Time // CPU time by task label (xentop-style breakdown)
	active     bool                // consumed CPU or was runnable since last accounting
	usedInAcct sim.Time            // CPU consumed during the current accounting period
	capDebt    sim.Time            // CPU consumed beyond the cap, not yet paid down

	tasksDone  uint64
	tasksTotal uint64
}

// ID returns the domain identifier assigned at creation (Dom0 is 0).
func (d *Domain) ID() int { return d.id }

// Name returns the domain's name.
func (d *Domain) Name() string { return d.name }

// Weight returns the domain's credit-scheduler weight.
func (d *Domain) Weight() int { return d.weight }

// Cap returns the domain's CPU cap in percent of one CPU (0 = uncapped).
func (d *Domain) Cap() int { return d.cap }

// VCPUs returns the domain's virtual CPUs.
func (d *Domain) VCPUs() []*VCPU { return d.vcpus }

// Meter returns the domain's CPU utilization meter.
func (d *Domain) Meter() *stats.UtilizationMeter { return d.meter }

// LabeledBusy returns a copy of the domain's CPU time broken down by task
// label — the simulation's analogue of the guest user/system split the
// paper inspects in its Figure 5 discussion (e.g. "net-rx" and "bridge"
// time on Dom0 versus application labels on guests).
func (d *Domain) LabeledBusy() map[string]sim.Time {
	out := make(map[string]sim.Time, len(d.labelBusy))
	for k, v := range d.labelBusy {
		out[k] = v
	}
	return out
}

// chargeLabel attributes consumed CPU to a task label.
func (d *Domain) chargeLabel(label string, t sim.Time) {
	if d.labelBusy == nil {
		d.labelBusy = make(map[string]sim.Time)
	}
	d.labelBusy[label] += t
}

// QueueLen returns the number of tasks waiting (excluding any task currently
// executing on a VCPU).
func (d *Domain) QueueLen() int { return len(d.queue) }

// TasksCompleted returns the number of tasks fully executed.
func (d *Domain) TasksCompleted() uint64 { return d.tasksDone }

// TasksSubmitted returns the number of tasks ever submitted.
func (d *Domain) TasksSubmitted() uint64 { return d.tasksTotal }

// Backlog returns the total unfinished CPU demand queued in the domain,
// including the remainder of any currently-executing tasks.
func (d *Domain) Backlog() sim.Time {
	var total sim.Time
	for _, t := range d.queue {
		total += t.remaining
	}
	for _, v := range d.vcpus {
		if v.current != nil {
			total += v.current.remaining
			if v.state == stateRunning {
				// Subtract progress made since the run interval began.
				total -= d.hv.runProgress(v, d.hv.sim.Now())
			}
		}
	}
	if total < 0 {
		total = 0
	}
	return total
}

// Submit queues a CPU task on the domain, waking a blocked VCPU if one
// exists. It panics on non-positive demand.
func (d *Domain) Submit(t *Task) {
	if t.Demand <= 0 {
		panic(fmt.Sprintf("xen: task %q with non-positive demand %v", t.Label, t.Demand))
	}
	t.remaining = t.Demand
	t.submitted = d.hv.sim.Now()
	d.queue = append(d.queue, t)
	d.tasksTotal++
	d.active = true
	d.hv.wakeOne(d)
}

// SubmitFunc is a convenience wrapper around Submit.
func (d *Domain) SubmitFunc(demand sim.Time, label string, onComplete func()) {
	d.Submit(&Task{Demand: demand, Label: label, OnComplete: onComplete})
}

// nextTask pops the head of the domain's task queue, or nil.
func (d *Domain) nextTask() *Task {
	if len(d.queue) == 0 {
		return nil
	}
	t := d.queue[0]
	copy(d.queue, d.queue[1:])
	d.queue[len(d.queue)-1] = nil
	d.queue = d.queue[:len(d.queue)-1]
	return t
}
