package xen

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

// TestSchedulerInvariantsRandomized runs randomized workloads and checks
// the scheduler's global invariants: CPU time conservation, work
// conservation, and consistent task accounting.
func TestSchedulerInvariantsRandomized(t *testing.T) {
	f := func(seed int64, nDomsRaw, nCPUsRaw uint8) bool {
		nCPUs := int(nCPUsRaw)%4 + 1
		nDoms := int(nDomsRaw)%6 + 1
		s := sim.New(seed)
		hv := New(s, Options{NumPCPUs: nCPUs})
		rng := s.Rand().Fork()
		doms := make([]*Domain, nDoms)
		for i := range doms {
			doms[i] = hv.CreateDomain("d", 64+rng.Intn(1024), 1)
		}
		hv.Start()

		// Random open-loop arrivals per domain.
		for _, d := range doms {
			d := d
			var arrive func()
			arrive = func() {
				if s.Now() > 2*sim.Second {
					return
				}
				d.SubmitFunc(sim.Time(rng.Intn(20)+1)*sim.Millisecond, "t", nil)
				s.After(rng.ExpTime(15*sim.Millisecond), arrive)
			}
			s.After(rng.ExpTime(10*sim.Millisecond), arrive)
		}

		// Work conservation probe: whenever total queued work exists and
		// some PCPU idles, every queued VCPU must be blocked or running —
		// i.e. the runqueue must be empty.
		conserving := true
		s.Ticker(7*sim.Millisecond, func() {
			idle := 0
			for _, p := range hv.PCPUs() {
				if p.Current() == nil {
					idle++
				}
			}
			if idle == 0 {
				return
			}
			for _, q := range hv.runq {
				if len(q) != 0 {
					conserving = false
				}
			}
		})

		s.RunUntil(3 * sim.Second)

		// Conservation of CPU time: total busy <= capacity.
		var busy sim.Time
		for _, d := range hv.Domains() {
			hv.syncRunMeter(d)
			busy += d.Meter().Busy()
		}
		if busy > sim.Time(nCPUs)*s.Now() {
			return false
		}
		// Task accounting: completed <= submitted, and all work either done
		// or still queued.
		for _, d := range hv.Domains() {
			if d.TasksCompleted() > d.TasksSubmitted() {
				return false
			}
		}
		return conserving
	}
	cfg := &quick.Config{MaxCount: 12}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestCreditsBoundedRandomized checks that credit balances stay within the
// accounting clamp under arbitrary load.
func TestCreditsBoundedRandomized(t *testing.T) {
	f := func(seed int64) bool {
		s := sim.New(seed)
		hv := New(s, Options{NumPCPUs: 2})
		rng := s.Rand().Fork()
		var doms []*Domain
		for i := 0; i < 4; i++ {
			doms = append(doms, hv.CreateDomain("d", 64+rng.Intn(512), 1))
		}
		hv.Start()
		for _, d := range doms {
			saturate(s, d, sim.Time(rng.Intn(10)+1)*sim.Millisecond)
		}
		ok := true
		clamp := hv.Options().AcctPeriod + hv.Options().Timeslice // slack for in-slice burn
		s.Ticker(10*sim.Millisecond, func() {
			for _, d := range doms {
				for _, v := range d.VCPUs() {
					if v.Credits() > clamp || v.Credits() < -clamp {
						ok = false
					}
				}
			}
		})
		s.RunUntil(2 * sim.Second)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

// TestNoLostTasksUnderChurn submits a known amount of work with weight
// changes, boosts, and cap churn happening concurrently, then verifies all
// of it completes.
func TestNoLostTasksUnderChurn(t *testing.T) {
	s := sim.New(17)
	hv := New(s, Options{NumPCPUs: 2})
	a := hv.CreateDomain("a", 256, 1)
	b := hv.CreateDomain("b", 256, 1)
	ctl := NewCtl(hv)
	hv.Start()
	const n = 300
	done := 0
	rng := s.Rand().Fork()
	for i := 0; i < n; i++ {
		d := a
		if i%2 == 0 {
			d = b
		}
		at := sim.Time(rng.Intn(2000)) * sim.Millisecond
		dom := d
		s.At(at, func() {
			d := dom
			d.SubmitFunc(sim.Time(rng.Intn(8)+1)*sim.Millisecond, "t", func() { done++ })
		})
	}
	// Churn the control plane while work flows.
	s.Ticker(50*sim.Millisecond, func() {
		switch rng.Intn(4) {
		case 0:
			_ = ctl.SetWeight(a.ID(), 64+rng.Intn(1000))
		case 1:
			_ = ctl.Boost(b.ID())
		case 2:
			_ = ctl.SetCap(a.ID(), 30+rng.Intn(70))
		case 3:
			_ = ctl.SetCap(a.ID(), 0)
		}
	})
	s.RunUntil(30 * sim.Second)
	if done != n {
		t.Fatalf("completed %d of %d tasks under churn", done, n)
	}
}
