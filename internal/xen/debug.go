package xen

import "fmt"

// DebugVCPU prints internal scheduling state (test helper).
func (hv *Hypervisor) DebugVCPU(d *Domain) string {
	out := ""
	for _, v := range d.vcpus {
		cur := "nil"
		if v.current != nil {
			cur = fmt.Sprintf("%s rem=%v", v.current.Label, v.current.remaining)
		}
		out += fmt.Sprintf("vcpu%d state=%d prio=%v credits=%v cur=%s runStart=%v", v.id, v.state, v.prio, v.credits, cur, v.runStart)
	}
	out += fmt.Sprintf(" runq=[%d %d %d]", len(hv.runq[0]), len(hv.runq[1]), len(hv.runq[2]))
	for _, p := range hv.pcpus {
		c := "idle"
		if p.current != nil {
			c = p.current.dom.name
		}
		out += fmt.Sprintf(" pcpu%d=%s", p.id, c)
	}
	return out
}
