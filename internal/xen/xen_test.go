package xen

import (
	"math"
	"testing"

	"repro/internal/sim"
)

// newTestHV builds a hypervisor with n PCPUs and starts it.
func newTestHV(t *testing.T, n int) (*sim.Simulator, *Hypervisor) {
	t.Helper()
	s := sim.New(1)
	hv := New(s, Options{NumPCPUs: n})
	return s, hv
}

// saturate keeps a domain continuously busy by resubmitting work.
func saturate(s *sim.Simulator, d *Domain, chunk sim.Time) {
	var next func()
	next = func() {
		d.SubmitFunc(chunk, "work", next)
	}
	d.SubmitFunc(chunk, "work", next)
}

func TestPriorityString(t *testing.T) {
	if PrioBoost.String() != "BOOST" || PrioUnder.String() != "UNDER" || PrioOver.String() != "OVER" {
		t.Fatal("priority names wrong")
	}
	if Priority(9).String() != "Priority(9)" {
		t.Fatal("unknown priority name wrong")
	}
}

func TestSingleDomainConsumesCPU(t *testing.T) {
	s, hv := newTestHV(t, 1)
	d := hv.CreateDomain("dom", 256, 1)
	hv.Start()
	done := false
	d.SubmitFunc(50*sim.Millisecond, "t", func() { done = true })
	s.RunUntil(1 * sim.Second)
	if !done {
		t.Fatal("task did not complete")
	}
	hv.syncRunMeter(d)
	busy := d.Meter().Busy()
	if busy != 50*sim.Millisecond {
		t.Fatalf("busy = %v, want 50ms", busy)
	}
	if d.TasksCompleted() != 1 || d.TasksSubmitted() != 1 {
		t.Fatalf("task counters = %d/%d", d.TasksCompleted(), d.TasksSubmitted())
	}
}

func TestTaskCompletionTime(t *testing.T) {
	s, hv := newTestHV(t, 1)
	d := hv.CreateDomain("dom", 256, 1)
	hv.Start()
	var doneAt sim.Time
	d.SubmitFunc(25*sim.Millisecond, "t", func() { doneAt = s.Now() })
	s.RunUntil(1 * sim.Second)
	// Uncontended: completes exactly after its demand.
	if doneAt != 25*sim.Millisecond {
		t.Fatalf("completed at %v, want 25ms", doneAt)
	}
}

func TestTasksRunFIFO(t *testing.T) {
	s, hv := newTestHV(t, 1)
	d := hv.CreateDomain("dom", 256, 1)
	hv.Start()
	var order []string
	for _, name := range []string{"a", "b", "c"} {
		name := name
		d.SubmitFunc(5*sim.Millisecond, name, func() { order = append(order, name) })
	}
	s.RunUntil(1 * sim.Second)
	if len(order) != 3 || order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Fatalf("order = %v", order)
	}
}

func TestEqualWeightsShareCPUEqually(t *testing.T) {
	s, hv := newTestHV(t, 1)
	a := hv.CreateDomain("a", 256, 1)
	b := hv.CreateDomain("b", 256, 1)
	hv.Start()
	saturate(s, a, 5*sim.Millisecond)
	saturate(s, b, 5*sim.Millisecond)
	s.RunUntil(10 * sim.Second)
	hv.syncRunMeter(a)
	hv.syncRunMeter(b)
	ua := a.Meter().MeanUtilization(0, s.Now())
	ub := b.Meter().MeanUtilization(0, s.Now())
	if math.Abs(ua-50) > 5 || math.Abs(ub-50) > 5 {
		t.Fatalf("utilizations = %.1f%%, %.1f%%, want ~50/50", ua, ub)
	}
	if math.Abs(ua+ub-100) > 2 {
		t.Fatalf("total utilization = %.1f%%, want ~100", ua+ub)
	}
}

func TestWeightsGiveProportionalShares(t *testing.T) {
	s, hv := newTestHV(t, 1)
	a := hv.CreateDomain("a", 512, 1)
	b := hv.CreateDomain("b", 256, 1)
	hv.Start()
	saturate(s, a, 5*sim.Millisecond)
	saturate(s, b, 5*sim.Millisecond)
	s.RunUntil(30 * sim.Second)
	hv.syncRunMeter(a)
	hv.syncRunMeter(b)
	ua := a.Meter().MeanUtilization(0, s.Now())
	ub := b.Meter().MeanUtilization(0, s.Now())
	ratio := ua / ub
	if math.Abs(ratio-2) > 0.3 {
		t.Fatalf("share ratio = %.2f (%.1f%% vs %.1f%%), want ~2", ratio, ua, ub)
	}
}

func TestWorkConservingWhenOneDomainIdles(t *testing.T) {
	s, hv := newTestHV(t, 1)
	a := hv.CreateDomain("a", 256, 1)
	hv.CreateDomain("b", 256, 1) // never submits work
	hv.Start()
	saturate(s, a, 5*sim.Millisecond)
	s.RunUntil(5 * sim.Second)
	hv.syncRunMeter(a)
	ua := a.Meter().MeanUtilization(0, s.Now())
	if ua < 95 {
		t.Fatalf("a utilization = %.1f%%, want ~100 (work conserving)", ua)
	}
}

func TestTwoPCPUsRunTwoDomainsConcurrently(t *testing.T) {
	s, hv := newTestHV(t, 2)
	a := hv.CreateDomain("a", 256, 1)
	b := hv.CreateDomain("b", 256, 1)
	hv.Start()
	saturate(s, a, 5*sim.Millisecond)
	saturate(s, b, 5*sim.Millisecond)
	s.RunUntil(5 * sim.Second)
	hv.syncRunMeter(a)
	hv.syncRunMeter(b)
	ua := a.Meter().MeanUtilization(0, s.Now())
	ub := b.Meter().MeanUtilization(0, s.Now())
	if ua < 95 || ub < 95 {
		t.Fatalf("utilizations = %.1f%%, %.1f%%, want ~100 each on 2 PCPUs", ua, ub)
	}
}

func TestThreeDomainsOnTwoPCPUs(t *testing.T) {
	// The paper's RUBiS setup: three single-VCPU VMs on a dual-core host.
	s, hv := newTestHV(t, 2)
	doms := []*Domain{
		hv.CreateDomain("web", 256, 1),
		hv.CreateDomain("app", 256, 1),
		hv.CreateDomain("db", 256, 1),
	}
	hv.Start()
	for _, d := range doms {
		saturate(s, d, 5*sim.Millisecond)
	}
	s.RunUntil(30 * sim.Second)
	total := 0.0
	for _, d := range doms {
		hv.syncRunMeter(d)
		u := d.Meter().MeanUtilization(0, s.Now())
		if math.Abs(u-66.7) > 8 {
			t.Fatalf("domain %s utilization = %.1f%%, want ~66.7", d.Name(), u)
		}
		total += u
	}
	if math.Abs(total-200) > 5 {
		t.Fatalf("total utilization = %.1f%%, want ~200", total)
	}
}

func TestWeightChangeTakesEffect(t *testing.T) {
	s, hv := newTestHV(t, 1)
	a := hv.CreateDomain("a", 256, 1)
	b := hv.CreateDomain("b", 256, 1)
	ctl := NewCtl(hv)
	hv.Start()
	saturate(s, a, 5*sim.Millisecond)
	saturate(s, b, 5*sim.Millisecond)
	s.RunUntil(5 * sim.Second)
	// Snapshot, then triple a's weight.
	hv.syncRunMeter(a)
	hv.syncRunMeter(b)
	aBefore, bBefore := a.Meter().Busy(), b.Meter().Busy()
	if err := ctl.SetWeight(a.ID(), 768); err != nil {
		t.Fatal(err)
	}
	s.RunUntil(35 * sim.Second)
	hv.syncRunMeter(a)
	hv.syncRunMeter(b)
	aRan := (a.Meter().Busy() - aBefore).Seconds()
	bRan := (b.Meter().Busy() - bBefore).Seconds()
	ratio := aRan / bRan
	if math.Abs(ratio-3) > 0.5 {
		t.Fatalf("post-change share ratio = %.2f, want ~3", ratio)
	}
}

func TestBoostedWakeupPreemptsOverVCPU(t *testing.T) {
	s, hv := newTestHV(t, 1)
	hog := hv.CreateDomain("hog", 256, 1)
	lat := hv.CreateDomain("latency", 256, 1)
	hv.Start()
	saturate(s, hog, 5*sim.Millisecond)
	// Let the hog burn through its credits so it sits at OVER.
	var wake, done sim.Time
	s.At(500*sim.Millisecond, func() {
		wake = s.Now()
		lat.SubmitFunc(1*sim.Millisecond, "ping", func() { done = s.Now() })
	})
	s.RunUntil(2 * sim.Second)
	if done == 0 {
		t.Fatal("latency task never completed")
	}
	delay := done - wake
	// A woken UNDER/BOOST VCPU should preempt the OVER hog promptly rather
	// than waiting out a full 30ms timeslice.
	if delay > 5*sim.Millisecond {
		t.Fatalf("wakeup-to-completion = %v, want <=5ms (boost preemption)", delay)
	}
}

func TestExplicitBoostTrigger(t *testing.T) {
	s, hv := newTestHV(t, 1)
	hog := hv.CreateDomain("hog", 2560, 1) // heavy weight keeps hog at UNDER
	victim := hv.CreateDomain("victim", 256, 1)
	ctl := NewCtl(hv)
	hv.Start()
	saturate(s, hog, 5*sim.Millisecond)
	saturate(s, victim, 5*sim.Millisecond)
	s.RunUntil(1 * sim.Second)

	// Without boost the victim only gets its small weight share. Boost it
	// repeatedly (as the Trigger mechanism does) and verify it runs promptly.
	var boostedRuns int
	stop := s.Ticker(20*sim.Millisecond, func() {
		if err := ctl.Boost(victim.ID()); err != nil {
			t.Errorf("Boost: %v", err)
		}
		if victim.VCPUs()[0].Running() {
			boostedRuns++
		}
	})
	s.RunUntil(2 * sim.Second)
	stop()
	if boostedRuns == 0 {
		t.Fatal("victim never observed running after boosts")
	}
}

func TestCapLimitsDomain(t *testing.T) {
	s, hv := newTestHV(t, 1)
	d := hv.CreateDomain("capped", 256, 1)
	ctl := NewCtl(hv)
	if err := ctl.SetCap(d.ID(), 25); err != nil {
		t.Fatal(err)
	}
	hv.Start()
	saturate(s, d, 5*sim.Millisecond)
	s.RunUntil(10 * sim.Second)
	hv.syncRunMeter(d)
	u := d.Meter().MeanUtilization(0, s.Now())
	if u > 40 {
		t.Fatalf("capped domain utilization = %.1f%%, want well under 100 (cap 25)", u)
	}
	if u < 10 {
		t.Fatalf("capped domain utilization = %.1f%%, starved below cap", u)
	}
}

func TestBlockedDomainUsesNoCPU(t *testing.T) {
	s, hv := newTestHV(t, 1)
	busy := hv.CreateDomain("busy", 256, 1)
	idle := hv.CreateDomain("idle", 256, 1)
	hv.Start()
	saturate(s, busy, 5*sim.Millisecond)
	s.RunUntil(3 * sim.Second)
	hv.syncRunMeter(idle)
	if idle.Meter().Busy() != 0 {
		t.Fatalf("idle domain consumed %v CPU", idle.Meter().Busy())
	}
}

func TestBacklogAccounting(t *testing.T) {
	s, hv := newTestHV(t, 1)
	d := hv.CreateDomain("dom", 256, 1)
	hv.Start()
	d.SubmitFunc(100*sim.Millisecond, "t1", nil)
	d.SubmitFunc(50*sim.Millisecond, "t2", nil)
	if got := d.Backlog(); got != 150*sim.Millisecond {
		t.Fatalf("initial backlog = %v, want 150ms", got)
	}
	s.RunUntil(30 * sim.Millisecond)
	got := d.Backlog()
	if got > 130*sim.Millisecond || got < 110*sim.Millisecond {
		t.Fatalf("backlog after 30ms = %v, want ~120ms", got)
	}
	s.RunUntil(1 * sim.Second)
	if got := d.Backlog(); got != 0 {
		t.Fatalf("final backlog = %v, want 0", got)
	}
}

func TestQueueLenAndCounters(t *testing.T) {
	s, hv := newTestHV(t, 1)
	d := hv.CreateDomain("dom", 256, 1)
	hv.Start()
	for i := 0; i < 5; i++ {
		d.SubmitFunc(10*sim.Millisecond, "t", nil)
	}
	// One task is picked up by the VCPU as soon as events run.
	s.RunUntil(1 * sim.Millisecond)
	if got := d.QueueLen(); got != 4 {
		t.Fatalf("QueueLen = %d, want 4", got)
	}
	s.RunUntil(1 * sim.Second)
	if d.TasksCompleted() != 5 {
		t.Fatalf("TasksCompleted = %d, want 5", d.TasksCompleted())
	}
}

func TestSubmitZeroDemandPanics(t *testing.T) {
	_, hv := newTestHV(t, 1)
	d := hv.CreateDomain("dom", 256, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("zero-demand task did not panic")
		}
	}()
	d.SubmitFunc(0, "bad", nil)
}

func TestCreateDomainValidation(t *testing.T) {
	_, hv := newTestHV(t, 1)
	for _, fn := range []func(){
		func() { hv.CreateDomain("x", 0, 1) },
		func() { hv.CreateDomain("x", -1, 1) },
		func() { hv.CreateDomain("x", 256, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid CreateDomain did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestDomainLookups(t *testing.T) {
	_, hv := newTestHV(t, 1)
	d0 := hv.CreateDomain("dom0", 256, 1)
	d1 := hv.CreateDomain("web", 256, 1)
	if d0.ID() != 0 || d1.ID() != 1 {
		t.Fatalf("IDs = %d, %d", d0.ID(), d1.ID())
	}
	if hv.DomainByName("web") != d1 {
		t.Fatal("DomainByName failed")
	}
	if hv.DomainByName("nope") != nil {
		t.Fatal("DomainByName returned ghost")
	}
	if len(hv.Domains()) != 2 {
		t.Fatalf("Domains() len = %d", len(hv.Domains()))
	}
	if len(hv.PCPUs()) != 1 {
		t.Fatalf("PCPUs() len = %d", len(hv.PCPUs()))
	}
}

func TestCtlErrors(t *testing.T) {
	_, hv := newTestHV(t, 1)
	hv.CreateDomain("dom", 256, 1)
	ctl := NewCtl(hv)
	if err := ctl.SetWeight(99, 512); err == nil {
		t.Fatal("SetWeight on missing domain succeeded")
	}
	if err := ctl.SetWeight(0, 0); err == nil {
		t.Fatal("SetWeight(0) succeeded")
	}
	if err := ctl.SetCap(0, -1); err == nil {
		t.Fatal("SetCap(-1) succeeded")
	}
	if err := ctl.Boost(42); err == nil {
		t.Fatal("Boost on missing domain succeeded")
	}
	if _, err := ctl.Weight(42); err == nil {
		t.Fatal("Weight on missing domain succeeded")
	}
}

func TestCtlAdjustWeightClamps(t *testing.T) {
	_, hv := newTestHV(t, 1)
	d := hv.CreateDomain("dom", 256, 1)
	ctl := NewCtl(hv)
	w, err := ctl.AdjustWeight(d.ID(), +1000, 64, 1024)
	if err != nil || w != 1024 {
		t.Fatalf("AdjustWeight up = %d, %v", w, err)
	}
	w, err = ctl.AdjustWeight(d.ID(), -5000, 64, 1024)
	if err != nil || w != 64 {
		t.Fatalf("AdjustWeight down = %d, %v", w, err)
	}
	if _, err := ctl.AdjustWeight(7, 1, 1, 10); err == nil {
		t.Fatal("AdjustWeight on missing domain succeeded")
	}
	got, err := ctl.Weight(d.ID())
	if err != nil || got != 64 {
		t.Fatalf("Weight = %d, %v", got, err)
	}
}

func TestStartTwicePanics(t *testing.T) {
	_, hv := newTestHV(t, 1)
	hv.Start()
	defer func() {
		if recover() == nil {
			t.Fatal("second Start did not panic")
		}
	}()
	hv.Start()
}

func TestUtilizationSeriesSampled(t *testing.T) {
	s := sim.New(1)
	hv := New(s, Options{NumPCPUs: 1, SamplePeriod: 100 * sim.Millisecond})
	d := hv.CreateDomain("dom", 256, 1)
	hv.Start()
	saturate(s, d, 5*sim.Millisecond)
	s.RunUntil(1 * sim.Second)
	series := d.Meter().Series()
	if series.Len() < 9 {
		t.Fatalf("series has %d samples, want ~10", series.Len())
	}
	if series.Max() < 95 {
		t.Fatalf("max sampled utilization = %.1f%%, want ~100", series.Max())
	}
}

func TestTotalUtilization(t *testing.T) {
	s, hv := newTestHV(t, 2)
	a := hv.CreateDomain("a", 256, 1)
	b := hv.CreateDomain("b", 256, 1)
	hv.Start()
	saturate(s, a, 5*sim.Millisecond)
	saturate(s, b, 5*sim.Millisecond)
	s.RunUntil(2 * sim.Second)
	total := hv.TotalUtilization(0, a, b)
	if math.Abs(total-200) > 5 {
		t.Fatalf("TotalUtilization = %.1f, want ~200", total)
	}
}

func TestDeterministicScheduling(t *testing.T) {
	run := func() (sim.Time, sim.Time, uint64) {
		s := sim.New(99)
		hv := New(s, Options{NumPCPUs: 2})
		a := hv.CreateDomain("a", 256, 1)
		b := hv.CreateDomain("b", 512, 1)
		c := hv.CreateDomain("c", 128, 1)
		hv.Start()
		saturate(s, a, 7*sim.Millisecond)
		saturate(s, b, 3*sim.Millisecond)
		saturate(s, c, 11*sim.Millisecond)
		s.RunUntil(10 * sim.Second)
		hv.syncRunMeter(a)
		hv.syncRunMeter(b)
		return a.Meter().Busy(), b.Meter().Busy(), hv.Schedules()
	}
	a1, b1, s1 := run()
	a2, b2, s2 := run()
	if a1 != a2 || b1 != b2 || s1 != s2 {
		t.Fatalf("nondeterministic: (%v,%v,%d) vs (%v,%v,%d)", a1, b1, s1, a2, b2, s2)
	}
}

func TestPreemptionCounterAdvances(t *testing.T) {
	s, hv := newTestHV(t, 1)
	hog := hv.CreateDomain("hog", 256, 1)
	waker := hv.CreateDomain("waker", 256, 1)
	hv.Start()
	saturate(s, hog, 50*sim.Millisecond)
	stop := s.Ticker(100*sim.Millisecond, func() {
		waker.SubmitFunc(1*sim.Millisecond, "ping", nil)
	})
	s.RunUntil(3 * sim.Second)
	stop()
	if hv.Preemptions() == 0 {
		t.Fatal("no preemptions recorded despite boosted wakeups")
	}
}

func TestManyDomainsFairness(t *testing.T) {
	s, hv := newTestHV(t, 4)
	var doms []*Domain
	for i := 0; i < 8; i++ {
		doms = append(doms, hv.CreateDomain("d", 256, 1))
	}
	hv.Start()
	for _, d := range doms {
		saturate(s, d, 5*sim.Millisecond)
	}
	s.RunUntil(20 * sim.Second)
	for _, d := range doms {
		hv.syncRunMeter(d)
		u := d.Meter().MeanUtilization(0, s.Now())
		if math.Abs(u-50) > 8 {
			t.Fatalf("domain utilization = %.1f%%, want ~50 (8 doms on 4 cpus)", u)
		}
	}
}

func TestMultiVCPUDomain(t *testing.T) {
	s, hv := newTestHV(t, 2)
	d := hv.CreateDomain("smp", 256, 2)
	hv.Start()
	// Two independent task streams; both VCPUs should engage.
	saturate(s, d, 5*sim.Millisecond)
	saturate(s, d, 5*sim.Millisecond)
	s.RunUntil(2 * sim.Second)
	hv.syncRunMeter(d)
	u := d.Meter().MeanUtilization(0, s.Now())
	if u < 150 {
		t.Fatalf("2-VCPU domain utilization = %.1f%%, want ~200", u)
	}
}
