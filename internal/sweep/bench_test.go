package sweep

import (
	"path/filepath"
	"strings"
	"testing"
)

func benchReportFixture(t *testing.T) *BenchReport {
	t.Helper()
	res, err := Run(fakePoints(3), fakeRunner, Options{Workers: 2, Reps: 2, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	r := NewBenchReport("fixture", res)
	if r.Trials != 6 || len(r.Results) != 6 {
		t.Fatalf("fixture shape wrong: %+v", r)
	}
	return r
}

// A report must compare clean against itself, including after a round trip
// through the indented JSON file format.
func TestCompareBenchSelf(t *testing.T) {
	r := benchReportFixture(t)
	path := filepath.Join(t.TempDir(), "BENCH_sweep.json")
	if err := r.Write(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadBenchReport(path)
	if err != nil {
		t.Fatal(err)
	}
	drift, wall := CompareBench(loaded, r, 0.10)
	if len(drift) != 0 {
		t.Errorf("self-compare drift: %v", drift)
	}
	if len(wall) != 0 {
		t.Errorf("self-compare wall findings: %v", wall)
	}
}

// Any change to a simulated result blob is a drift finding.
func TestCompareBenchDetectsMetricDrift(t *testing.T) {
	baseline := benchReportFixture(t)
	current := benchReportFixture(t)
	current.Results[2].Data = []byte(`{"point":"p01","rep":0,"value":999}`)
	drift, _ := CompareBench(baseline, current, 0)
	if len(drift) != 1 || !strings.Contains(drift[0], "p01/rep0") {
		t.Errorf("drift findings = %v, want one naming p01/rep0", drift)
	}
}

func TestCompareBenchDetectsShapeDrift(t *testing.T) {
	baseline := benchReportFixture(t)
	for name, mutate := range map[string]func(r *BenchReport){
		"seed":  func(r *BenchReport) { r.Seed = 99 },
		"reps":  func(r *BenchReport) { r.Reps = 3 },
		"name":  func(r *BenchReport) { r.Name = "other" },
		"count": func(r *BenchReport) { r.Results = r.Results[:4] },
		"trial-seed": func(r *BenchReport) {
			r.Results[0].Seed = 12345
		},
	} {
		current := benchReportFixture(t)
		mutate(current)
		drift, _ := CompareBench(baseline, current, 0)
		if len(drift) == 0 {
			t.Errorf("mutating %s produced no drift finding", name)
		}
	}
}

// Wall-clock findings are separate from drift and honour the tolerance.
func TestCompareBenchWallTolerance(t *testing.T) {
	baseline := benchReportFixture(t)
	baseline.TrialsPerSec = 100

	current := benchReportFixture(t)
	current.TrialsPerSec = 95 // -5%: inside ±10%
	drift, wall := CompareBench(baseline, current, 0.10)
	if len(drift) != 0 || len(wall) != 0 {
		t.Errorf("-5%% flagged: drift=%v wall=%v", drift, wall)
	}

	current.TrialsPerSec = 80 // -20%: outside ±10%
	drift, wall = CompareBench(baseline, current, 0.10)
	if len(drift) != 0 {
		t.Errorf("wall slowdown misclassified as drift: %v", drift)
	}
	if len(wall) != 1 {
		t.Errorf("-20%% not flagged: %v", wall)
	}

	// wallTol <= 0 disables the wall check (CI on unknown hardware).
	if _, wall := CompareBench(baseline, current, 0); len(wall) != 0 {
		t.Errorf("wall check ran with tolerance disabled: %v", wall)
	}
}
