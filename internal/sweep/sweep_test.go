package sweep

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/sim"
)

// fakeResult is a small deterministic "experiment outcome" derived from the
// trial seed, so any seed or ordering mistake shows up as a byte diff.
type fakeResult struct {
	Point string  `json:"point"`
	Rep   int     `json:"rep"`
	Value float64 `json:"value"`
}

// fakeRunner simulates a tiny workload: a few PRNG draws from the trial's
// seed substream, exactly like a real single-goroutine simulation.
func fakeRunner(t Trial) (any, error) {
	rng := sim.NewRand(t.Seed)
	v := 0.0
	for i := 0; i < 100; i++ {
		v += rng.Float64()
	}
	return fakeResult{Point: t.Point.Name, Rep: t.Rep, Value: v}, nil
}

func fakePoints(n int) []Point {
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{Name: fmt.Sprintf("p%02d", i), Config: map[string]int{"i": i}}
	}
	return pts
}

// The core invariant: any worker count produces byte-identical
// deterministic output, trial for trial, in stable enumeration order.
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	points := fakePoints(7)
	var want []byte
	for _, workers := range []int{1, 2, 4, 8, 16} {
		res, err := Run(points, fakeRunner, Options{Workers: workers, Reps: 3, Seed: 42})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got, err := res.DeterministicJSON()
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = got
			continue
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("workers=%d output differs from workers=1:\n%s\nvs\n%s", workers, got, want)
		}
	}
}

func TestRunStableOrderAndSeeds(t *testing.T) {
	points := fakePoints(3)
	res, err := Run(points, fakeRunner, Options{Workers: 8, Reps: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trials) != 6 {
		t.Fatalf("got %d trials, want 6", len(res.Trials))
	}
	for pi := 0; pi < 3; pi++ {
		for rep := 0; rep < 2; rep++ {
			tr := res.Trials[pi*2+rep]
			if tr.Point != points[pi].Name || tr.Rep != rep {
				t.Errorf("trial %d is %s/rep%d, want %s/rep%d", pi*2+rep, tr.Point, tr.Rep, points[pi].Name, rep)
			}
			if want := DeriveSeed(9, points[pi].Name, rep); tr.Seed != want {
				t.Errorf("trial %s/rep%d seed %d, want %d", tr.Point, tr.Rep, tr.Seed, want)
			}
		}
	}
}

func TestDeriveSeed(t *testing.T) {
	if got := DeriveSeed(123, "any", 0); got != 123 {
		t.Errorf("rep 0 seed = %d, want the base seed 123", got)
	}
	// Substreams are stable, distinct per rep, and never zero.
	a1, a2 := DeriveSeed(123, "s", 1), DeriveSeed(123, "s", 1)
	if a1 != a2 {
		t.Errorf("derivation unstable: %d vs %d", a1, a2)
	}
	seen := map[int64]int{}
	for rep := 0; rep < 50; rep++ {
		s := DeriveSeed(123, "s", rep)
		if s == 0 {
			t.Fatalf("rep %d derived a zero seed", rep)
		}
		if prev, dup := seen[s]; dup {
			t.Fatalf("reps %d and %d collide on seed %d", prev, rep, s)
		}
		seen[s] = rep
	}
	if DeriveSeed(123, "a", 1) == DeriveSeed(123, "b", 1) {
		t.Error("different streams share a substream")
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(nil, fakeRunner, Options{}); err == nil {
		t.Error("no points: want error")
	}
	if _, err := Run(fakePoints(1), nil, Options{}); err == nil {
		t.Error("nil runner: want error")
	}
	dup := []Point{{Name: "same"}, {Name: "same"}}
	if _, err := Run(dup, fakeRunner, Options{}); err == nil {
		t.Error("duplicate point names: want error")
	}
	bad := []Point{{Name: "p", Config: func() {}}}
	if _, err := Run(bad, fakeRunner, Options{}); err == nil {
		t.Error("unmarshalable config: want error")
	}
}

// A failing trial is recorded without aborting the rest of the sweep, and
// its error stays deterministic output too.
func TestRunTrialErrors(t *testing.T) {
	points := fakePoints(4)
	run := func(tr Trial) (any, error) {
		if tr.Point.Name == "p02" {
			return nil, errors.New("boom")
		}
		return fakeRunner(tr)
	}
	res, err := Run(points, run, Options{Workers: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Err() == nil {
		t.Fatal("want first-trial error")
	}
	var okCount int
	for _, tr := range res.Trials {
		if tr.Err == "" {
			okCount++
		} else if tr.Point != "p02" {
			t.Errorf("unexpected error on %s: %s", tr.Point, tr.Err)
		}
	}
	if okCount != 3 {
		t.Errorf("%d trials succeeded, want 3", okCount)
	}
}

func TestRunProgress(t *testing.T) {
	points := fakePoints(5)
	var events []Progress
	_, err := Run(points, fakeRunner, Options{Workers: 3, Progress: func(p Progress) {
		events = append(events, p)
	}})
	if err != nil {
		t.Fatal(err)
	}
	// One initial snapshot plus one per trial, with Done monotonic to Total.
	if len(events) != 6 {
		t.Fatalf("got %d progress events, want 6", len(events))
	}
	for i := 1; i < len(events); i++ {
		if events[i].Done != events[i-1].Done+1 {
			t.Errorf("progress not monotonic at %d: %+v -> %+v", i, events[i-1], events[i])
		}
		if events[i].Total != 5 {
			t.Errorf("total = %d, want 5", events[i].Total)
		}
	}
	if last := events[len(events)-1]; last.Done != last.Total {
		t.Errorf("final progress %d/%d not complete", last.Done, last.Total)
	}
}

func TestRunResultDecode(t *testing.T) {
	res, err := Run(fakePoints(2), fakeRunner, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	var r fakeResult
	if err := res.Decode(1, &r); err != nil {
		t.Fatal(err)
	}
	if r.Point != "p01" || r.Rep != 0 {
		t.Errorf("decoded %+v, want p01/rep0", r)
	}
	want, _ := fakeRunner(Trial{Point: Point{Name: "p01"}, Seed: DeriveSeed(5, "p01", 0)})
	if r.Value != want.(fakeResult).Value {
		t.Errorf("decoded value %v, want %v", r.Value, want.(fakeResult).Value)
	}
}
