// Package sweep is the parallel deterministic experiment engine: it fans
// the independent trials of a sweep (configuration point × repetition)
// across a pool of OS workers while keeping the collected results
// byte-identical to a sequential run.
//
// Determinism rests on three invariants:
//
//  1. Every trial is an independent, single-goroutine simulation that is a
//     pure function of (point config, trial seed). Trials share no mutable
//     state, so execution order cannot influence results.
//  2. Each trial's seed is derived from the sweep's base seed with an
//     FNV-1a substream (the same trick pcie.FaultPlan uses for per-channel
//     fault streams), never from worker identity or scheduling order.
//  3. Results are serialized to canonical JSON inside the worker and
//     collected into a slice indexed by the trial's stable enumeration
//     position, so assembly order is independent of completion order.
//
// Consequently `workers=N` and `workers=1` produce byte-identical
// DeterministicJSON output — a property pinned by tests at both the engine
// level and the full RUBiS fault-matrix level.
//
// The engine itself is harness code, not simulation code: it runs real
// goroutines and measures wall-clock throughput. All simulated metrics stay
// inside trial results; wall-clock numbers are kept out of the
// deterministic output.
package sweep

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"
	"time"
)

// Point is one configuration in a sweep matrix.
type Point struct {
	// Name identifies the point; it must be unique within the sweep. It
	// appears in results and is part of the cache key.
	Name string
	// Config is the point's JSON-marshalable experiment configuration. It
	// is part of the cache key, so any parameter that changes the outcome
	// must be reachable from it.
	Config any
}

// Trial is one scheduled execution: a point × repetition, with its derived
// seed substream.
type Trial struct {
	// Index is the trial's stable position in the sweep's enumeration
	// order (point-major, then repetition). Results are collected by this
	// index, which is what keeps parallel output identical to sequential.
	Index int
	// Point is the configuration point being run.
	Point Point
	// Rep is the repetition number, 0-based.
	Rep int
	// Seed is the trial's derived seed substream; see DeriveSeed.
	Seed int64
}

// Runner executes one trial and returns its JSON-marshalable result. A
// Runner must be safe for concurrent use by multiple goroutines and must
// derive all randomness from t.Seed (or values reachable from the point
// config) — never from ambient sources — or parallel runs lose
// reproducibility.
type Runner func(t Trial) (any, error)

// Progress is a snapshot of a running sweep, delivered to the Options
// callback after every trial completes.
type Progress struct {
	Done    int           // trials finished (including cache hits)
	Total   int           // trials in the sweep
	Cached  int           // trials satisfied from the result cache
	Elapsed time.Duration // wall-clock time since Run started
}

// Options shapes one Run call.
type Options struct {
	// Workers is the worker-pool size; <= 0 means runtime.GOMAXPROCS(0).
	Workers int
	// Reps is the number of repetitions per point; <= 0 means 1.
	Reps int
	// Seed is the sweep's base seed (default 1). Repetition 0 runs on the
	// base seed itself; higher repetitions get FNV-derived substreams.
	Seed int64
	// Cache, when non-nil, is consulted before running a trial and updated
	// after; see Cache. Cache keys include CacheVersion.
	Cache *Cache
	// CacheVersion invalidates cached results when the experiment code
	// changes meaning without changing configuration. Bump it whenever a
	// runner's semantics change.
	CacheVersion string
	// Progress, when non-nil, is invoked after every trial completes. It
	// is called with an internal lock held, so it must be fast and must
	// not call back into the engine.
	Progress func(p Progress)
}

// TrialResult is one trial's outcome. The JSON encoding deliberately
// excludes wall-clock fields so that DeterministicJSON is reproducible
// across machines and worker counts.
type TrialResult struct {
	Point string          `json:"point"`
	Rep   int             `json:"rep"`
	Seed  int64           `json:"seed"`
	Data  json.RawMessage `json:"data,omitempty"`
	Err   string          `json:"error,omitempty"`

	// Cached reports whether the result came from the cache.
	Cached bool `json:"-"`
	// Wall is the trial's wall-clock execution time (zero for cache hits).
	Wall time.Duration `json:"-"`
}

// RunResult is the outcome of one sweep run, with trials in stable
// enumeration order.
type RunResult struct {
	Trials    []TrialResult
	Workers   int           // resolved pool size
	Reps      int           // resolved repetitions per point
	Seed      int64         // resolved base seed
	Elapsed   time.Duration // wall clock for the whole sweep
	CacheHits int
}

// Err returns the first trial error in enumeration order, or nil.
func (r *RunResult) Err() error {
	for _, t := range r.Trials {
		if t.Err != "" {
			return fmt.Errorf("sweep: trial %s/rep%d: %s", t.Point, t.Rep, t.Err)
		}
	}
	return nil
}

// Decode unmarshals trial i's result into out.
func (r *RunResult) Decode(i int, out any) error {
	t := r.Trials[i]
	if t.Err != "" {
		return fmt.Errorf("sweep: trial %s/rep%d failed: %s", t.Point, t.Rep, t.Err)
	}
	if err := json.Unmarshal(t.Data, out); err != nil {
		return fmt.Errorf("sweep: decode trial %s/rep%d: %w", t.Point, t.Rep, err)
	}
	return nil
}

// DeterministicJSON renders the trial results as indented JSON containing
// only simulated (machine-independent) data: point, rep, seed, and the
// runner's result blob. Byte-identical across worker counts, cache states,
// and machines.
func (r *RunResult) DeterministicJSON() ([]byte, error) {
	out, err := json.MarshalIndent(r.Trials, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("sweep: marshal results: %w", err)
	}
	return append(out, '\n'), nil
}

// Executed returns the number of trials actually computed (cache misses).
func (r *RunResult) Executed() int { return len(r.Trials) - r.CacheHits }

// TrialsPerSec returns the wall-clock throughput of computed trials —
// the headline number of the bench-regression guard. Cache hits are
// excluded so a warm cache cannot masquerade as a faster engine.
func (r *RunResult) TrialsPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Executed()) / r.Elapsed.Seconds()
}

// DeriveSeed returns the seed substream for repetition rep of a sweep with
// the given base seed. Repetition 0 is the base seed itself, so a
// single-repetition sweep reproduces historical single-run results exactly;
// higher repetitions get independent FNV-1a substreams. The stream label
// keeps substreams of unrelated consumers (e.g. different experiment
// families) from colliding.
//
// The repetition — not the point — drives the derivation, so every point
// of one sweep sees the same workload draws within a repetition: config
// sweeps stay paired comparisons, and repetitions provide the independent
// resamples that mean/CI aggregation needs.
func DeriveSeed(base int64, stream string, rep int) int64 {
	if rep == 0 {
		return base
	}
	h := fnv.New64a()
	_, _ = h.Write([]byte(stream))
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(rep))
	_, _ = h.Write(buf[:])
	s := base ^ int64(h.Sum64())
	if s == 0 {
		s = 1 // a zero seed would collapse to sim.NewRand's fallback state
	}
	return s
}

// Run executes every trial of the sweep (len(points) × reps) across the
// worker pool and returns results in stable enumeration order. All trials
// run to completion even when some fail; per-trial errors are recorded in
// the results, and the first one is also available via RunResult.Err.
//
// Run returns a non-nil error only for sweep-level misuse: no points,
// duplicate point names, or an unmarshalable point config.
func Run(points []Point, run Runner, opts Options) (*RunResult, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("sweep: no points")
	}
	if run == nil {
		return nil, fmt.Errorf("sweep: nil runner")
	}
	seen := make(map[string]bool, len(points))
	for _, p := range points {
		if p.Name == "" {
			return nil, fmt.Errorf("sweep: point with empty name")
		}
		if seen[p.Name] {
			return nil, fmt.Errorf("sweep: duplicate point name %q", p.Name)
		}
		seen[p.Name] = true
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	reps := opts.Reps
	if reps <= 0 {
		reps = 1
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}

	// Enumerate trials point-major: index = point*reps + rep. This order —
	// not completion order — defines the output.
	trials := make([]Trial, 0, len(points)*reps)
	for pi, p := range points {
		for rep := 0; rep < reps; rep++ {
			trials = append(trials, Trial{
				Index: pi*reps + rep,
				Point: p,
				Rep:   rep,
				Seed:  DeriveSeed(seed, p.Name, rep),
			})
		}
	}

	res := &RunResult{
		Trials:  make([]TrialResult, len(trials)),
		Workers: workers,
		Reps:    reps,
		Seed:    seed,
	}

	// Cache pre-pass: resolve hits sequentially (cheap file reads) so the
	// pool only sees real work. Key computation also validates that every
	// point config marshals.
	keys := make([]string, len(trials))
	var todo []int
	for i, t := range trials {
		res.Trials[i] = TrialResult{Point: t.Point.Name, Rep: t.Rep, Seed: t.Seed}
		key, err := cacheKey(opts.CacheVersion, t)
		if err != nil {
			return nil, err
		}
		keys[i] = key
		if blob, ok := opts.Cache.Load(key); ok {
			res.Trials[i].Data = blob
			res.Trials[i].Cached = true
			res.CacheHits++
			continue
		}
		todo = append(todo, i)
	}

	//lint:allow detnondet(the engine measures its own wall-clock throughput; simulated results never depend on it) simtime(sweep wall time is harness telemetry, never fed back into simulated state)
	start := time.Now()
	var (
		mu   sync.Mutex
		done = res.CacheHits
	)
	report := func() {
		if opts.Progress == nil {
			return
		}
		//lint:allow detnondet(harness progress reporting, not simulation state)
		opts.Progress(Progress{Done: done, Total: len(trials), Cached: res.CacheHits, Elapsed: time.Since(start)})
	}
	mu.Lock()
	report() // surface cache hits (and a zero baseline) before work starts
	mu.Unlock()

	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				t := trials[i]
				//lint:allow detnondet(per-trial wall time feeds the bench guard only) simtime(per-trial wall time feeds the bench guard only, never simulated state)
				t0 := time.Now()
				out := &res.Trials[i]
				v, err := run(t)
				if err == nil {
					var blob []byte
					if blob, err = json.Marshal(v); err == nil {
						out.Data = blob
					}
				}
				if err != nil {
					out.Err = err.Error()
				}
				//lint:allow detnondet(per-trial wall time feeds the bench guard only)
				out.Wall = time.Since(t0)
				if out.Err == "" {
					opts.Cache.Store(keys[i], out.Data)
				}
				mu.Lock()
				done++
				report()
				mu.Unlock()
			}
		}()
	}
	for _, i := range todo {
		work <- i
	}
	close(work)
	wg.Wait()
	//lint:allow detnondet(sweep wall clock feeds the bench guard only)
	res.Elapsed = time.Since(start)
	return res, nil
}
