package sweep

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Cache is a content-addressed result store: the canonical JSON blob of a
// completed trial, keyed by a hash of everything that determines it
// (cache version, point name, point config, seed, repetition). Re-running
// a sweep skips every already-computed point; changing any input — or the
// CacheVersion — changes the key and forces recomputation.
//
// Entries are one file per key under the cache directory (conventionally
// `.sweepcache/` at the repo root). Writes go through a temp file and
// rename, so concurrent workers and interrupted runs can never leave a
// torn entry; a corrupt or unreadable entry is treated as a miss.
type Cache struct {
	dir string
}

// OpenCache opens (creating if needed) the cache rooted at dir.
func OpenCache(dir string) (*Cache, error) {
	if dir == "" {
		return nil, fmt.Errorf("sweep: empty cache directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("sweep: open cache: %w", err)
	}
	return &Cache{dir: dir}, nil
}

// Dir returns the cache's root directory.
func (c *Cache) Dir() string { return c.dir }

// Load returns the cached blob for key. A nil cache, a missing entry, and
// an unreadable entry all report a miss.
func (c *Cache) Load(key string) (json.RawMessage, bool) {
	if c == nil {
		return nil, false
	}
	blob, err := os.ReadFile(c.path(key))
	if err != nil || !json.Valid(blob) {
		return nil, false
	}
	return blob, true
}

// Store writes blob under key. A nil cache ignores the write; storage
// errors are swallowed (the cache is an optimization, never a correctness
// dependency) — the trial result is already in memory.
func (c *Cache) Store(key string, blob json.RawMessage) {
	if c == nil || len(blob) == 0 {
		return
	}
	tmp, err := os.CreateTemp(c.dir, "trial-*.tmp")
	if err != nil {
		return
	}
	name := tmp.Name()
	_, werr := tmp.Write(blob)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		_ = os.Remove(name)
		return
	}
	if err := os.Rename(name, c.path(key)); err != nil {
		_ = os.Remove(name)
	}
}

func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key+".json")
}

// cacheKey derives the content hash for one trial: SHA-256 over a
// length-prefixed encoding of (version, point name, canonical config JSON,
// seed, rep). Length prefixes make the encoding injective, so no two
// distinct inputs can collide by concatenation.
func cacheKey(version string, t Trial) (string, error) {
	cfg, err := json.Marshal(t.Point.Config)
	if err != nil {
		return "", fmt.Errorf("sweep: point %q config not JSON-marshalable: %w", t.Point.Name, err)
	}
	h := sha256.New()
	for _, part := range []string{
		version,
		t.Point.Name,
		string(cfg),
		fmt.Sprintf("%d", t.Seed),
		fmt.Sprintf("%d", t.Rep),
	} {
		fmt.Fprintf(h, "%d:%s", len(part), part)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}
