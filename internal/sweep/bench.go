package sweep

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
)

// BenchReport is the machine-readable record of one pinned-configuration
// sweep run — the artifact committed as BENCH_sweep.json and compared by
// the bench-regression guard. It separates two classes of numbers:
//
//   - Results carries the simulated metrics, which are a pure function of
//     the pinned configuration and must match a baseline exactly on any
//     machine; drift means the models changed.
//   - TrialsPerSec/ElapsedSec carry the harness's wall-clock throughput,
//     which is hardware-dependent and compared within a tolerance.
type BenchReport struct {
	Name    string `json:"name"`
	Seed    int64  `json:"seed"`
	Reps    int    `json:"reps"`
	Workers int    `json:"workers"`
	Trials  int    `json:"trials"`

	// Wall-clock (hardware-dependent; tolerance-compared).
	ElapsedSec   float64 `json:"elapsed_sec"`
	TrialsPerSec float64 `json:"trials_per_sec"`

	// Simulated metrics (machine-independent; exact-compared).
	Results []TrialResult `json:"results"`
}

// NewBenchReport builds the report for one sweep run.
func NewBenchReport(name string, res *RunResult) *BenchReport {
	return &BenchReport{
		Name:         name,
		Seed:         res.Seed,
		Reps:         res.Reps,
		Workers:      res.Workers,
		Trials:       len(res.Trials),
		ElapsedSec:   res.Elapsed.Seconds(),
		TrialsPerSec: res.TrialsPerSec(),
		Results:      res.Trials,
	}
}

// MergeBenchReports concatenates several sweep runs into one pinned
// report under a single name, in argument order: the guard can then pin
// multiple experiment matrices in one committed baseline. Seed, Reps,
// and Workers are taken from the first report (the pinned configuration
// runs every matrix with the same options); wall-clock totals sum, so
// the merged TrialsPerSec is the whole-suite throughput.
func MergeBenchReports(name string, reports ...*BenchReport) *BenchReport {
	out := &BenchReport{Name: name}
	for i, r := range reports {
		if i == 0 {
			out.Seed, out.Reps, out.Workers = r.Seed, r.Reps, r.Workers
		}
		out.Trials += r.Trials
		out.ElapsedSec += r.ElapsedSec
		out.Results = append(out.Results, r.Results...)
	}
	if out.ElapsedSec > 0 {
		out.TrialsPerSec = float64(out.Trials) / out.ElapsedSec
	}
	return out
}

// LoadBenchReport reads a report written by Write.
func LoadBenchReport(path string) (*BenchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("sweep: load bench baseline: %w", err)
	}
	var r BenchReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("sweep: parse bench baseline %s: %w", path, err)
	}
	return &r, nil
}

// Write renders the report as indented JSON at path.
func (r *BenchReport) Write(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("sweep: marshal bench report: %w", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("sweep: write bench report: %w", err)
	}
	return nil
}

// CompareBench checks current against baseline. Simulated metrics compare
// exactly: any difference in the trial list (points, reps, seeds, result
// blobs) is a drift finding — the models or the pinned configuration
// changed, and published numbers are no longer reproducible. Wall-clock
// trial throughput compares within wallTol (a fraction; 0.10 = ±10%);
// wallTol <= 0 skips the wall-clock check entirely (CI on unknown
// hardware). The two finding classes are returned separately so callers
// can enforce different policies.
func CompareBench(baseline, current *BenchReport, wallTol float64) (drift, wall []string) {
	if baseline.Name != current.Name {
		drift = append(drift, fmt.Sprintf("sweep name %q != baseline %q", current.Name, baseline.Name))
	}
	if baseline.Seed != current.Seed {
		drift = append(drift, fmt.Sprintf("seed %d != baseline %d", current.Seed, baseline.Seed))
	}
	if baseline.Reps != current.Reps {
		drift = append(drift, fmt.Sprintf("reps %d != baseline %d", current.Reps, baseline.Reps))
	}
	if len(current.Results) != len(baseline.Results) {
		drift = append(drift, fmt.Sprintf("trial count %d != baseline %d", len(current.Results), len(baseline.Results)))
	} else {
		for i := range baseline.Results {
			b, c := baseline.Results[i], current.Results[i]
			switch {
			case b.Point != c.Point || b.Rep != c.Rep:
				drift = append(drift, fmt.Sprintf("trial %d is %s/rep%d, baseline has %s/rep%d",
					i, c.Point, c.Rep, b.Point, b.Rep))
			case b.Seed != c.Seed:
				drift = append(drift, fmt.Sprintf("trial %s/rep%d seed %d != baseline %d",
					c.Point, c.Rep, c.Seed, b.Seed))
			case b.Err != c.Err:
				drift = append(drift, fmt.Sprintf("trial %s/rep%d error %q != baseline %q",
					c.Point, c.Rep, c.Err, b.Err))
			case !jsonEqual(b.Data, c.Data):
				drift = append(drift, fmt.Sprintf("trial %s/rep%d simulated metrics drifted from baseline",
					c.Point, c.Rep))
			}
		}
	}

	if wallTol > 0 && baseline.TrialsPerSec > 0 {
		ratio := current.TrialsPerSec / baseline.TrialsPerSec
		if ratio < 1-wallTol || ratio > 1+wallTol {
			wall = append(wall, fmt.Sprintf(
				"trial throughput %.3f/s is %+.1f%% vs baseline %.3f/s (tolerance ±%.0f%%)",
				current.TrialsPerSec, (ratio-1)*100, baseline.TrialsPerSec, wallTol*100))
		}
	}
	return drift, wall
}

// jsonEqual compares two JSON blobs by canonicalized bytes, tolerating
// formatting differences between a freshly marshaled blob and one that
// round-tripped through an indented baseline file.
func jsonEqual(a, b json.RawMessage) bool {
	var ca, cb bytes.Buffer
	if err := json.Compact(&ca, a); err != nil {
		return bytes.Equal(a, b)
	}
	if err := json.Compact(&cb, b); err != nil {
		return bytes.Equal(a, b)
	}
	return bytes.Equal(ca.Bytes(), cb.Bytes())
}
