package sweep

import (
	"bytes"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
)

// A second run over a warm cache must execute nothing, and its
// deterministic output must be byte-identical to the cold run's.
func TestCacheRoundTrip(t *testing.T) {
	cache, err := OpenCache(filepath.Join(t.TempDir(), "sweepcache"))
	if err != nil {
		t.Fatal(err)
	}
	points := fakePoints(4)
	var executed atomic.Int64
	run := func(tr Trial) (any, error) {
		executed.Add(1)
		return fakeRunner(tr)
	}
	opts := Options{Workers: 4, Reps: 2, Seed: 3, Cache: cache, CacheVersion: "v1"}

	cold, err := Run(points, run, opts)
	if err != nil {
		t.Fatal(err)
	}
	if cold.CacheHits != 0 || executed.Load() != 8 {
		t.Fatalf("cold run: hits=%d executed=%d, want 0/8", cold.CacheHits, executed.Load())
	}

	warm, err := Run(points, run, opts)
	if err != nil {
		t.Fatal(err)
	}
	if warm.CacheHits != 8 || executed.Load() != 8 {
		t.Fatalf("warm run: hits=%d executed=%d, want 8 hits and no new executions", warm.CacheHits, executed.Load())
	}
	cj, _ := cold.DeterministicJSON()
	wj, _ := warm.DeterministicJSON()
	if !bytes.Equal(cj, wj) {
		t.Fatalf("warm output differs from cold:\n%s\nvs\n%s", wj, cj)
	}
	for _, tr := range warm.Trials {
		if !tr.Cached {
			t.Errorf("trial %s/rep%d not served from cache", tr.Point, tr.Rep)
		}
	}
}

// Every cache-key input — version, seed, rep, config — must invalidate.
func TestCacheKeySensitivity(t *testing.T) {
	base := Trial{Point: Point{Name: "p", Config: map[string]int{"x": 1}}, Rep: 1, Seed: 7}
	k0, err := cacheKey("v1", base)
	if err != nil {
		t.Fatal(err)
	}
	variants := map[string]func() (string, error){
		"version": func() (string, error) { return cacheKey("v2", base) },
		"name": func() (string, error) {
			tr := base
			tr.Point.Name = "q"
			return cacheKey("v1", tr)
		},
		"config": func() (string, error) {
			tr := base
			tr.Point.Config = map[string]int{"x": 2}
			return cacheKey("v1", tr)
		},
		"seed": func() (string, error) {
			tr := base
			tr.Seed = 8
			return cacheKey("v1", tr)
		},
		"rep": func() (string, error) {
			tr := base
			tr.Rep = 2
			return cacheKey("v1", tr)
		},
	}
	for what, f := range variants {
		k, err := f()
		if err != nil {
			t.Fatalf("%s: %v", what, err)
		}
		if k == k0 {
			t.Errorf("changing %s did not change the cache key", what)
		}
	}
	// Stability: same inputs, same key.
	again, _ := cacheKey("v1", base)
	if again != k0 {
		t.Error("cache key is not stable")
	}
}

// A corrupt entry is a miss, never a poisoned result.
func TestCacheCorruptEntryIsMiss(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key, err := cacheKey("v1", Trial{Point: Point{Name: "p"}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	cache.Store(key, []byte(`{"ok":true}`))
	if _, ok := cache.Load(key); !ok {
		t.Fatal("stored entry not loadable")
	}
	if err := os.WriteFile(cache.path(key), []byte("{truncated"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := cache.Load(key); ok {
		t.Error("corrupt entry served as a hit")
	}
}

// A nil cache is inert: loads miss, stores are dropped, sweeps still run.
func TestCacheNilSafe(t *testing.T) {
	var c *Cache
	if _, ok := c.Load("k"); ok {
		t.Error("nil cache load hit")
	}
	c.Store("k", []byte(`1`)) // must not panic
	res, err := Run(fakePoints(2), fakeRunner, Options{Cache: nil})
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHits != 0 {
		t.Errorf("nil cache produced %d hits", res.CacheHits)
	}
}
