package rubis

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/flight"
	"repro/internal/netsim"
	"repro/internal/overload"
	"repro/internal/sim"
	"repro/internal/xen"
)

// Tier indexes the three server tiers.
type Tier int

// The three RUBiS tiers, pipeline order.
const (
	TierWeb Tier = iota
	TierApp
	TierDB
	NumTiers
)

// String names the tier.
func (t Tier) String() string {
	switch t {
	case TierWeb:
		return "web"
	case TierApp:
		return "app"
	case TierDB:
		return "db"
	default:
		return fmt.Sprintf("Tier(%d)", int(t))
	}
}

// shedRespBytes sizes the small error response a shed request receives so
// closed-loop clients observe the rejection instead of stalling.
const shedRespBytes = 512

// OverloadConfig tunes the server-side admission control. The zero value
// (or a nil pointer in ServerConfig) leaves admission unbounded — the
// legacy cascade behaviour.
type OverloadConfig struct {
	// QueueCap bounds each tier's admission queue (default 512; negative
	// means unbounded).
	QueueCap int
	// QueueDeadline expires requests that queue longer than this (default
	// 4s; negative means no deadline).
	QueueDeadline sim.Time
	// Policy selects the shed policy (default priority-aware: browse
	// requests are shed before bid/write traffic).
	Policy overload.Policy
	// Threshold is the EWMA queue-delay level at which a tier declares
	// overload (default 250ms; the hysteresis floor is half of it).
	Threshold sim.Time
}

func (c *OverloadConfig) applyDefaults() {
	if c.QueueCap == 0 {
		c.QueueCap = 512
	}
	if c.QueueDeadline == 0 {
		c.QueueDeadline = 4 * sim.Second
	}
	if c.Threshold == 0 {
		c.Threshold = 250 * sim.Millisecond
	}
}

// ServerConfig tunes the server-side deployment.
type ServerConfig struct {
	// Noise is the coefficient of variation applied to per-tier service
	// demands (default 0.2; 0 disables variability).
	Noise float64
	// BridgeCost is the Dom0 CPU charged per inter-VM hop over the Xen
	// bridge (default 150us).
	BridgeCost sim.Time

	// Worker-pool sizes. The tiers are synchronous, as in the real stack:
	// an Apache worker is held for a request's whole lifetime, a Tomcat
	// worker while the servlet (and any database call) runs, a MySQL
	// connection while the query runs. Pool exhaustion is what couples the
	// tiers — when the database falls behind, app workers block on it, web
	// workers block on the app tier, and even static browsing stalls. This
	// cascade is what the paper's coordination scheme interrupts.
	WebWorkers int // default 128
	AppWorkers int // default 64
	DBWorkers  int // default 24

	// Overload, when non-nil, bounds each tier's admission queue with a
	// per-request queueing deadline and a shed policy, and arms per-tier
	// EWMA overload detectors on the queueing delay. Nil keeps the tiers
	// unbounded.
	Overload *OverloadConfig

	// Flight, when non-nil, taps each tier queue's admission verdicts into
	// the flight recorder under the tier name ("web"/"app"/"db").
	Flight *flight.Recorder
}

func (c *ServerConfig) applyDefaults() {
	if c.Noise == 0 {
		c.Noise = 0.2
	}
	if c.BridgeCost == 0 {
		c.BridgeCost = 150 * sim.Microsecond
	}
	if c.WebWorkers == 0 {
		c.WebWorkers = 128
	}
	if c.AppWorkers == 0 {
		c.AppWorkers = 64
	}
	if c.DBWorkers == 0 {
		c.DBWorkers = 24
	}
}

// Server is the three-tier RUBiS deployment: web, application, and database
// VMs, with inter-tier communication relayed through the Dom0 bridge. It
// consumes request packets delivered by the host stack to the web VM and
// transmits response packets back toward the client. Each tier admits work
// through a bounded deadline queue (unbounded when ServerConfig.Overload is
// nil) so saturation sheds load instead of growing queues without limit.
type Server struct {
	sim     *sim.Simulator
	cfg     ServerConfig
	web     *xen.Domain
	app     *xen.Domain
	db      *xen.Domain
	host    *netsim.HostStack
	catalog [NumRequestTypes]Profile
	rng     *sim.Rand

	queues    [NumTiers]*overload.Queue
	detectors [NumTiers]*overload.Detector
	notify    func(tier Tier, overloaded bool)

	served uint64
	sheds  uint64 // shed responses issued (admission rejections + expiries)
}

// NewServer wires the three tier domains behind the host stack's handler
// for the web VM. All request traffic must carry a *Request payload.
func NewServer(s *sim.Simulator, cfg ServerConfig, web, app, db *xen.Domain, host *netsim.HostStack) *Server {
	cfg.applyDefaults()
	srv := &Server{
		sim:     s,
		cfg:     cfg,
		web:     web,
		app:     app,
		db:      db,
		host:    host,
		catalog: DefaultCatalog(),
		rng:     s.Rand().Fork(),
	}
	qcfg := overload.QueueConfig{Cap: -1} // unbounded, no deadline
	if cfg.Overload != nil {
		oc := *cfg.Overload
		oc.applyDefaults()
		qcfg = overload.QueueConfig{Cap: oc.QueueCap, Deadline: oc.QueueDeadline, Policy: oc.Policy}
	}
	workers := [NumTiers]int{cfg.WebWorkers, cfg.AppWorkers, cfg.DBWorkers}
	for t := TierWeb; t < NumTiers; t++ {
		srv.queues[t] = overload.NewQueue(s, workers[t], qcfg)
		srv.queues[t].SetFlightRecorder(cfg.Flight, t.String())
	}
	if cfg.Overload != nil {
		oc := *cfg.Overload
		oc.applyDefaults()
		for t := TierWeb; t < NumTiers; t++ {
			tier := t
			det := overload.NewDetector(overload.DetectorConfig{Threshold: oc.Threshold})
			det.OnChange = func(over bool) {
				if srv.notify != nil {
					srv.notify(tier, over)
				}
			}
			srv.detectors[tier] = det
			srv.queues[tier].OnDelay(func(_ overload.Class, delay sim.Time) {
				det.Sample(delay)
			})
		}
	}
	host.Register(web.ID(), srv.onRequest)
	return srv
}

// Catalog returns the server's request profiles (mutable for ablations).
func (s *Server) Catalog() *[NumRequestTypes]Profile { return &s.catalog }

// Served returns the number of requests fully processed.
func (s *Server) Served() uint64 { return s.served }

// Sheds returns the number of shed responses issued (admission rejections
// plus queueing-deadline expiries, across all tiers).
func (s *Server) Sheds() uint64 { return s.sheds }

// Tiers returns the web, app, and db domains.
func (s *Server) Tiers() (web, app, db *xen.Domain) { return s.web, s.app, s.db }

// TierDomain returns the domain hosting the tier.
func (s *Server) TierDomain(t Tier) *xen.Domain {
	return [NumTiers]*xen.Domain{s.web, s.app, s.db}[t]
}

// Queue returns the tier's admission queue (counters, config, occupancy).
func (s *Server) Queue(t Tier) *overload.Queue { return s.queues[t] }

// Detector returns the tier's overload detector, nil when admission
// control is off.
func (s *Server) Detector(t Tier) *overload.Detector { return s.detectors[t] }

// SetOverloadNotify installs the hook fired on every tier overload
// transition — the coordination plane raises Triggers from it.
func (s *Server) SetOverloadNotify(fn func(tier Tier, overloaded bool)) { s.notify = fn }

// PoolWaiting returns the number of requests queued for admission at each
// tier's worker pool — the visible symptom of the cross-tier cascade.
func (s *Server) PoolWaiting() (web, app, db int) {
	return s.queues[TierWeb].Waiting(), s.queues[TierApp].Waiting(), s.queues[TierDB].Waiting()
}

// classFor maps a request's profiled kind onto the admission class the
// shed policies act on: browsing (read) traffic is expendable, bid/write
// (transactional) traffic is protected.
func classFor(kind core.RequestKind) overload.Class {
	if kind == core.WriteRequest {
		return overload.ClassTransact
	}
	return overload.ClassBrowse
}

// demand draws a noisy service demand around mean.
func (s *Server) demand(mean sim.Time) sim.Time {
	if mean <= 0 {
		return 0
	}
	if s.cfg.Noise <= 0 {
		return mean
	}
	sd := mean.Scale(s.cfg.Noise)
	min := mean.Scale(0.2)
	return s.rng.TruncNormalTime(mean, sd, min)
}

// onRequest runs one request through the synchronous tier pipeline:
// acquire a web worker -> web CPU -> (bridge) -> acquire an app worker ->
// app CPU -> (bridge) -> acquire a DB connection -> DB CPU -> release all
// -> respond. Tiers with zero profiled demand are skipped (browsing
// requests touch the database only negligibly) and do not take workers.
// Because workers are held across downstream calls, a backlogged database
// exhausts the app pool and then the web pool, stalling unrelated requests
// — the cross-tier cascade the coordination policy combats. With admission
// control armed, a saturated tier sheds instead: the rejected request
// releases every upstream worker it held and a small error response goes
// back, so shedding one tier's backlog frees capacity in all of them.
func (s *Server) onRequest(p *netsim.Packet) {
	req, ok := p.Payload.(*Request)
	if !ok {
		panic(fmt.Sprintf("rubis: packet %d without request payload", p.ID))
	}
	prof := s.catalog[req.Type]
	class := classFor(prof.Kind)

	finish := func() {
		s.queues[TierWeb].Release()
		s.served++
		// Responses are segmented at the MTU; only the final segment
		// carries the request payload, so the client (and the IXP's
		// response-observing DPIs) see exactly one completion event per
		// request, once the whole response has left the host.
		const mtu = 1500
		remaining := prof.RespBytes
		for remaining > 0 {
			size := remaining
			if size > mtu {
				size = mtu
			}
			remaining -= size
			pkt := &netsim.Packet{
				ID:      p.ID,
				Size:    size,
				SrcVM:   s.web.ID(),
				DstVM:   -1,
				Class:   netsim.Class(req.Type.String()),
				Created: s.sim.Now(),
			}
			if remaining == 0 {
				pkt.Payload = req
			}
			s.host.Transmit(pkt)
		}
	}

	// shedAt rejects the request at a tier: release the upstream workers
	// the pipeline holds (the web worker always, the app worker when held)
	// and answer with a small error response so the session continues.
	shedAt := func(releaseApp bool) func(bool) {
		return func(bool) {
			if releaseApp {
				s.queues[TierApp].Release()
			}
			s.queues[TierWeb].Release()
			s.shedResponse(p.ID, req)
		}
	}

	dbStage := func(done func(), abort func(expired bool)) {
		d := s.demand(prof.DB)
		if d <= 0 {
			done()
			return
		}
		s.queues[TierDB].Acquire(class, func() {
			s.db.SubmitFunc(d, "db:"+req.Type.String(), func() {
				s.queues[TierDB].Release()
				done()
			})
		}, abort)
	}
	appStage := func(done func()) {
		d := s.demand(prof.App)
		if d <= 0 {
			dbStage(done, shedAt(false))
			return
		}
		s.queues[TierApp].Acquire(class, func() {
			s.app.SubmitFunc(d, "app:"+req.Type.String(), func() {
				s.bridgeHop(func() {
					dbStage(func() {
						s.queues[TierApp].Release()
						done()
					}, shedAt(true))
				})
			})
		}, shedAt(false))
	}
	s.queues[TierWeb].Acquire(class, func() {
		webDemand := s.demand(prof.Web)
		if webDemand <= 0 {
			webDemand = sim.Millisecond / 2
		}
		s.web.SubmitFunc(webDemand, "web:"+req.Type.String(), func() {
			s.bridgeHop(func() { appStage(finish) })
		})
	}, func(bool) {
		// Rejected at the front door: no workers held yet.
		s.shedResponse(p.ID, req)
	})
}

// shedResponse transmits the small error response a shed request gets.
// The request payload rides back marked Shed so the client advances the
// session without recording a served latency.
func (s *Server) shedResponse(pktID uint64, req *Request) {
	s.sheds++
	req.Shed = true
	s.host.Transmit(&netsim.Packet{
		ID:      pktID,
		Size:    shedRespBytes,
		SrcVM:   s.web.ID(),
		DstVM:   -1,
		Class:   netsim.Class(req.Type.String()),
		Payload: req,
		Created: s.sim.Now(),
	})
}

// bridgeHop charges Dom0 for relaying an inter-VM message over the Xen
// bridge, then continues the pipeline.
func (s *Server) bridgeHop(next func()) {
	s.host.Dom0().SubmitFunc(s.cfg.BridgeCost, "bridge", next)
}
