package rubis

import (
	"fmt"

	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/xen"
)

// ServerConfig tunes the server-side deployment.
type ServerConfig struct {
	// Noise is the coefficient of variation applied to per-tier service
	// demands (default 0.2; 0 disables variability).
	Noise float64
	// BridgeCost is the Dom0 CPU charged per inter-VM hop over the Xen
	// bridge (default 150us).
	BridgeCost sim.Time

	// Worker-pool sizes. The tiers are synchronous, as in the real stack:
	// an Apache worker is held for a request's whole lifetime, a Tomcat
	// worker while the servlet (and any database call) runs, a MySQL
	// connection while the query runs. Pool exhaustion is what couples the
	// tiers — when the database falls behind, app workers block on it, web
	// workers block on the app tier, and even static browsing stalls. This
	// cascade is what the paper's coordination scheme interrupts.
	WebWorkers int // default 128
	AppWorkers int // default 64
	DBWorkers  int // default 24
}

func (c *ServerConfig) applyDefaults() {
	if c.Noise == 0 {
		c.Noise = 0.2
	}
	if c.BridgeCost == 0 {
		c.BridgeCost = 150 * sim.Microsecond
	}
	if c.WebWorkers == 0 {
		c.WebWorkers = 128
	}
	if c.AppWorkers == 0 {
		c.AppWorkers = 64
	}
	if c.DBWorkers == 0 {
		c.DBWorkers = 24
	}
}

// pool is a counted worker pool with a FIFO admission queue.
type pool struct {
	free  int
	queue []func()
	max   int
}

func newPool(n int) *pool { return &pool{free: n, max: n} }

// acquire runs fn immediately if a worker is free, else queues it.
func (p *pool) acquire(fn func()) {
	if p.free > 0 {
		p.free--
		fn()
		return
	}
	p.queue = append(p.queue, fn)
}

// release frees a worker, handing it straight to the next waiter if any.
func (p *pool) release() {
	if len(p.queue) > 0 {
		next := p.queue[0]
		copy(p.queue, p.queue[1:])
		p.queue[len(p.queue)-1] = nil
		p.queue = p.queue[:len(p.queue)-1]
		next()
		return
	}
	p.free++
	if p.free > p.max {
		panic("rubis: pool released more workers than it has")
	}
}

// Waiting returns the number of queued admission requests.
func (p *pool) Waiting() int { return len(p.queue) }

// Server is the three-tier RUBiS deployment: web, application, and database
// VMs, with inter-tier communication relayed through the Dom0 bridge. It
// consumes request packets delivered by the host stack to the web VM and
// transmits response packets back toward the client.
type Server struct {
	sim     *sim.Simulator
	cfg     ServerConfig
	web     *xen.Domain
	app     *xen.Domain
	db      *xen.Domain
	host    *netsim.HostStack
	catalog [NumRequestTypes]Profile
	rng     *sim.Rand

	webPool, appPool, dbPool *pool

	served uint64
}

// NewServer wires the three tier domains behind the host stack's handler
// for the web VM. All request traffic must carry a *Request payload.
func NewServer(s *sim.Simulator, cfg ServerConfig, web, app, db *xen.Domain, host *netsim.HostStack) *Server {
	cfg.applyDefaults()
	srv := &Server{
		sim:     s,
		cfg:     cfg,
		web:     web,
		app:     app,
		db:      db,
		host:    host,
		catalog: DefaultCatalog(),
		rng:     s.Rand().Fork(),
		webPool: newPool(cfg.WebWorkers),
		appPool: newPool(cfg.AppWorkers),
		dbPool:  newPool(cfg.DBWorkers),
	}
	host.Register(web.ID(), srv.onRequest)
	return srv
}

// Catalog returns the server's request profiles (mutable for ablations).
func (s *Server) Catalog() *[NumRequestTypes]Profile { return &s.catalog }

// Served returns the number of requests fully processed.
func (s *Server) Served() uint64 { return s.served }

// Tiers returns the web, app, and db domains.
func (s *Server) Tiers() (web, app, db *xen.Domain) { return s.web, s.app, s.db }

// PoolWaiting returns the number of requests queued for admission at each
// tier's worker pool — the visible symptom of the cross-tier cascade.
func (s *Server) PoolWaiting() (web, app, db int) {
	return s.webPool.Waiting(), s.appPool.Waiting(), s.dbPool.Waiting()
}

// demand draws a noisy service demand around mean.
func (s *Server) demand(mean sim.Time) sim.Time {
	if mean <= 0 {
		return 0
	}
	if s.cfg.Noise <= 0 {
		return mean
	}
	sd := mean.Scale(s.cfg.Noise)
	min := mean.Scale(0.2)
	return s.rng.TruncNormalTime(mean, sd, min)
}

// onRequest runs one request through the synchronous tier pipeline:
// acquire a web worker -> web CPU -> (bridge) -> acquire an app worker ->
// app CPU -> (bridge) -> acquire a DB connection -> DB CPU -> release all
// -> respond. Tiers with zero profiled demand are skipped (browsing
// requests touch the database only negligibly) and do not take workers.
// Because workers are held across downstream calls, a backlogged database
// exhausts the app pool and then the web pool, stalling unrelated requests
// — the cross-tier cascade the coordination policy combats.
func (s *Server) onRequest(p *netsim.Packet) {
	req, ok := p.Payload.(*Request)
	if !ok {
		panic(fmt.Sprintf("rubis: packet %d without request payload", p.ID))
	}
	prof := s.catalog[req.Type]

	finish := func() {
		s.webPool.release()
		s.served++
		// Responses are segmented at the MTU; only the final segment
		// carries the request payload, so the client (and the IXP's
		// response-observing DPIs) see exactly one completion event per
		// request, once the whole response has left the host.
		const mtu = 1500
		remaining := prof.RespBytes
		for remaining > 0 {
			size := remaining
			if size > mtu {
				size = mtu
			}
			remaining -= size
			pkt := &netsim.Packet{
				ID:      p.ID,
				Size:    size,
				SrcVM:   s.web.ID(),
				DstVM:   -1,
				Class:   netsim.Class(req.Type.String()),
				Created: s.sim.Now(),
			}
			if remaining == 0 {
				pkt.Payload = req
			}
			s.host.Transmit(pkt)
		}
	}

	dbStage := func(done func()) {
		d := s.demand(prof.DB)
		if d <= 0 {
			done()
			return
		}
		s.dbPool.acquire(func() {
			s.db.SubmitFunc(d, "db:"+req.Type.String(), func() {
				s.dbPool.release()
				done()
			})
		})
	}
	appStage := func(done func()) {
		d := s.demand(prof.App)
		if d <= 0 {
			dbStage(done)
			return
		}
		s.appPool.acquire(func() {
			s.app.SubmitFunc(d, "app:"+req.Type.String(), func() {
				s.bridgeHop(func() {
					dbStage(func() {
						s.appPool.release()
						done()
					})
				})
			})
		})
	}
	s.webPool.acquire(func() {
		webDemand := s.demand(prof.Web)
		if webDemand <= 0 {
			webDemand = sim.Millisecond / 2
		}
		s.web.SubmitFunc(webDemand, "web:"+req.Type.String(), func() {
			s.bridgeHop(func() { appStage(finish) })
		})
	})
}

// bridgeHop charges Dom0 for relaying an inter-VM message over the Xen
// bridge, then continues the pipeline.
func (s *Server) bridgeHop(next func()) {
	s.host.Dom0().SubmitFunc(s.cfg.BridgeCost, "bridge", next)
}
