package rubis

import (
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/xen"
)

// Scheme selects the coordination policy variant for RUBiS runs.
type Scheme int

// Coordination policy variants.
const (
	SchemeOutstanding Scheme = iota // backlog-tracking (default)
	SchemeLoadTrack                 // offered-load tracking
	SchemeClass                     // fixed-delta read/write rule
)

// String names the scheme.
func (s Scheme) String() string {
	switch s {
	case SchemeOutstanding:
		return "outstanding"
	case SchemeLoadTrack:
		return "loadtrack"
	case SchemeClass:
		return "class"
	default:
		return "unknown"
	}
}

// ExperimentConfig describes one RUBiS run on the two-island testbed.
type ExperimentConfig struct {
	Platform platform.Config
	Server   ServerConfig
	Client   ClientConfig

	// Coordinated enables the paper's coord-ixp-dom0 scheme: the IXP's
	// request classifier drives per-request weight Tunes for the tier VMs.
	Coordinated bool
	// Scheme selects the coordination policy when Coordinated is set:
	// SchemeOutstanding (default) tracks per-tier outstanding demand from
	// both traffic directions; SchemeLoadTrack tracks offered load only;
	// SchemeClass is the simple fixed-delta read/write rule. The latter two
	// exist for the policy ablation.
	Scheme Scheme
	// TuneStep is the weight delta per classified request for the class
	// scheme (default 64).
	TuneStep int
	// LoadScale converts profiled demand ms into tune units for the
	// load-tracking scheme (default 1.0).
	LoadScale float64
	// LoadTau is the decay time constant of the load-tracking translation
	// (default 1s).
	LoadTau sim.Time
	// GuestWeight is the initial weight of each tier VM (default 256).
	GuestWeight int

	Warmup   sim.Time // measurement starts here (default 10s)
	Duration sim.Time // total run length including warmup (default 70s)
}

// DefaultExperimentClient returns the calibrated client workload used for
// the paper's RUBiS tables and figures: 80 concurrent sessions of the
// read-write (bid) mix with population-level write surges every 8s.
func DefaultExperimentClient() ClientConfig {
	return ClientConfig{
		Sessions:           80,
		RequestsPerSession: 60,
		ThinkTime:          400 * sim.Millisecond,
		Phases:             true,
		PhasePeriod:        8 * sim.Second,
		PhaseWindow:        3 * sim.Second,
		WriteBiasIn:        10,
		WriteBiasOut:       0.05,
		PhaseThinkFactor:   1, // composition surge only, no rate surge
	}
}

func (c *ExperimentConfig) applyDefaults() {
	if c.GuestWeight == 0 {
		c.GuestWeight = 256
	}
	if c.Client == (ClientConfig{}) {
		c.Client = DefaultExperimentClient()
	}
	if c.LoadScale == 0 {
		c.LoadScale = 1
	}
	if c.LoadTau == 0 {
		c.LoadTau = sim.Second
	}
	if c.Warmup == 0 {
		c.Warmup = 10 * sim.Second
	}
	if c.Duration == 0 {
		c.Duration = 70 * sim.Second
	}
}

// Result carries everything the paper's RUBiS tables and figures report.
type Result struct {
	Metrics *Metrics

	// Per-tier mean CPU utilization over the measurement interval, percent
	// of one CPU (Figure 5), plus Dom0 for completeness.
	WebUtil, AppUtil, DBUtil, Dom0Util float64
	// TotalUtil is the summed tier utilization (the paper's Table 2 basis).
	TotalUtil float64
	// Throughput in requests/second and the derived platform efficiency.
	Throughput float64
	Efficiency float64

	// Coordination-plane counters.
	TunesSent    uint64
	TunesApplied uint64
	// Final weights, to inspect where the policy drove the scheduler.
	FinalWeights map[string]int

	// Robust aggregates the coordination plane's reliability counters
	// (fault injection, ack/retry transport, leases, degradation).
	Robust platform.Robustness
}

// utilWindow measures a domain's utilization over [from, to) using busy
// snapshots, so pre-warmup activity is excluded.
type utilWindow struct {
	dom  *xen.Domain
	at   sim.Time
	busy sim.Time
}

func (w *utilWindow) snapshot(now sim.Time) {
	w.at = now
	w.busy = w.dom.Meter().Busy()
}

func (w *utilWindow) utilization(now sim.Time) float64 {
	if now <= w.at {
		return 0
	}
	return float64(w.dom.Meter().Busy()-w.busy) / float64(now-w.at) * 100
}

// RunExperiment assembles the testbed, deploys RUBiS, optionally arms the
// coordination policy, runs to completion, and returns the measurements.
func RunExperiment(cfg ExperimentConfig) *Result {
	cfg.applyDefaults()
	if cfg.Coordinated && cfg.Platform.MinGuestWeight == 0 {
		// In the outstanding-load translation the weight floor is the base
		// allocation; Tunes add transient priority on top of it, so an
		// unloaded tier never drops below its uncoordinated share.
		cfg.Platform.MinGuestWeight = cfg.GuestWeight
		cfg.Platform.MaxGuestWeight = 2048
	}
	p := platform.New(cfg.Platform)
	web := p.AddGuest("WebServer", cfg.GuestWeight)
	app := p.AddGuest("AppServer", cfg.GuestWeight)
	db := p.AddGuest("DBServer", cfg.GuestWeight)

	srv := NewServer(p.Sim, cfg.Server, web, app, db, p.Host)
	_ = srv

	clientCfg := cfg.Client
	clientCfg.WebVM = web.ID()
	clientCfg.Warmup = cfg.Warmup
	client := NewClient(p.Sim, clientCfg, p.IXP)

	coordinating := false
	if cfg.Coordinated {
		coordinating = true
		tiers := core.TierEntities{Web: web.ID(), App: app.ID(), DB: db.ID()}
		catalog := DefaultCatalog()
		demands := func(pkt *netsim.Packet) (webMs, appMs, dbMs float64, ok bool) {
			req, isReq := pkt.Payload.(*Request)
			if !isReq {
				return 0, 0, 0, false
			}
			prof := catalog[req.Type]
			return prof.Web.Milliseconds(), prof.App.Milliseconds(), prof.DB.Milliseconds(), true
		}
		switch cfg.Scheme {
		case SchemeClass:
			policy := core.NewRequestClassPolicy(p.IXPAgent, platform.X86Island, tiers, cfg.TuneStep)
			p.IXP.AddDPI(func(pkt *netsim.Packet) {
				req, ok := pkt.Payload.(*Request)
				if !ok || pkt.SrcVM != -1 {
					return // only classify inbound client requests
				}
				policy.OnRequest(catalog[req.Type].Kind)
			})
		case SchemeLoadTrack:
			p.X86Act.EnableLoadTracking(p.Sim, cfg.LoadTau, 100*sim.Millisecond)
			policy := core.NewLoadTrackPolicy(p.IXPAgent, platform.X86Island, tiers)
			policy.Scale = cfg.LoadScale
			p.IXP.AddDPI(func(pkt *netsim.Packet) {
				if pkt.SrcVM != -1 {
					return
				}
				if w, a, d, ok := demands(pkt); ok {
					policy.OnRequest(w, a, d)
				}
			})
		default: // SchemeOutstanding
			// Slow decay heals any drift of the outstanding-demand estimate
			// (e.g. responses whose requests predate coordination start).
			p.X86Act.EnableLoadTracking(p.Sim, 20*sim.Second, 250*sim.Millisecond)
			policy := core.NewOutstandingLoadPolicy(p.IXPAgent, platform.X86Island, tiers)
			policy.Scale = cfg.LoadScale
			p.IXP.AddDPI(func(pkt *netsim.Packet) {
				if pkt.SrcVM != -1 {
					return
				}
				if w, a, d, ok := demands(pkt); ok {
					policy.OnRequest(w, a, d)
				}
			})
			p.IXP.AddTxDPI(func(pkt *netsim.Packet) {
				if w, a, d, ok := demands(pkt); ok {
					policy.OnResponse(w, a, d)
				}
			})
		}
	}

	// Utilization windows snapshot at warmup so Figure 5 reflects steady
	// state only.
	windows := []*utilWindow{{dom: web}, {dom: app}, {dom: db}, {dom: p.Dom0}}
	p.Sim.At(cfg.Warmup, func() {
		for _, w := range windows {
			p.HV.TotalUtilization(0, w.dom) // folds in-progress run intervals into the meter
			w.snapshot(p.Sim.Now())
		}
	})

	client.Start()
	p.Sim.RunUntil(cfg.Duration)
	now := p.Sim.Now()
	for _, w := range windows {
		p.HV.TotalUtilization(0, w.dom)
	}

	res := &Result{
		Metrics:      client.Metrics(),
		WebUtil:      windows[0].utilization(now),
		AppUtil:      windows[1].utilization(now),
		DBUtil:       windows[2].utilization(now),
		Dom0Util:     windows[3].utilization(now),
		FinalWeights: map[string]int{},
	}
	res.TotalUtil = res.WebUtil + res.AppUtil + res.DBUtil
	res.Throughput = client.Metrics().Throughput(now)
	res.Efficiency = stats.PlatformEfficiency(res.Throughput, res.TotalUtil)
	if coordinating {
		res.TunesSent = p.IXPAgent.Stats().TunesSent
		res.TunesApplied = p.X86Agent.Stats().TunesApplied
	}
	for _, d := range []*xen.Domain{web, app, db} {
		res.FinalWeights[d.Name()] = d.Weight()
	}
	res.Robust = p.Robustness()
	return res
}
