package rubis

import (
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/netsim"
	"repro/internal/overload"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/xen"
)

// Scheme selects the coordination policy variant for RUBiS runs.
type Scheme int

// Coordination policy variants.
const (
	SchemeOutstanding Scheme = iota // backlog-tracking (default)
	SchemeLoadTrack                 // offered-load tracking
	SchemeClass                     // fixed-delta read/write rule
)

// String names the scheme.
func (s Scheme) String() string {
	switch s {
	case SchemeOutstanding:
		return "outstanding"
	case SchemeLoadTrack:
		return "loadtrack"
	case SchemeClass:
		return "class"
	default:
		return "unknown"
	}
}

// OverloadSetup arms the overload-control plane for a run.
type OverloadSetup struct {
	// Queueing knobs, forwarded into ServerConfig.Overload (defaults:
	// cap 512, deadline 4s, priority-aware shedding, threshold 250ms).
	QueueCap      int
	QueueDeadline sim.Time
	Policy        overload.Policy
	Threshold     sim.Time

	// Coordinated closes the cross-island loop: tier overload raises a
	// Trigger, the controller translates it into a weight boost for the
	// tier plus an upstream shed-rate adjustment, and the IXP's
	// early-admission gate sheds per-class traffic before PCIe.
	Coordinated bool
	// ShedStep is the shedder units per upstream adjustment (default 2,
	// each worth the shedder's Step probability).
	ShedStep int
	// BoostDelta is the weight boost accompanying each translated Trigger
	// (default 128).
	BoostDelta int
	// TriggerRefill/TriggerBurst damp overload Triggers through a
	// per-(kind, entity) token bucket (defaults 500ms, burst 3).
	TriggerRefill sim.Time
	TriggerBurst  int
	// Breaker arms circuit breakers on the reliable mailbox endpoints
	// (requires Platform.Reliable).
	Breaker bool
}

func (o *OverloadSetup) applyDefaults() {
	if o.ShedStep == 0 {
		o.ShedStep = 2
	}
	if o.BoostDelta == 0 {
		o.BoostDelta = 128
	}
	if o.TriggerRefill == 0 {
		o.TriggerRefill = 500 * sim.Millisecond
	}
	if o.TriggerBurst == 0 {
		o.TriggerBurst = 3
	}
}

// OverloadReport aggregates the overload-control plane's counters for one
// run — the observability surface the ablation and chaos tests pin.
type OverloadReport struct {
	// Per-tier admission-queue counters (web, app, db order).
	Tiers [NumTiers]overload.QueueStats

	IXPShed       uint64 // requests shed by the NIC before PCIe
	IXPDropped    uint64 // packets silently dropped at full NIC rings/queues
	ServerSheds   uint64 // shed responses the tiers issued
	ShedResponses uint64 // shed responses the client observed post-warmup
	Abandoned     uint64 // pages the client gave up on at its timeout

	OverloadEpisodes uint64 // tier detector trips
	TriggersSent     uint64 // overload Triggers the x86 agent emitted
	ShedTunes        uint64 // upstream shed adjustments issued
	BoostTunes       uint64 // translated weight boosts issued

	ServedP95Ms float64 // p95 served-response latency, milliseconds
}

// EnergyReport aggregates the energy subsystem's measurements. Joules
// cover the measurement interval (warmup excluded, via ledger snapshots at
// the warmup boundary); residency covers the whole run.
type EnergyReport struct {
	Enabled  bool
	Governor string // energy.ModeOff / ModeOndemand / ModeCoordinated

	PlatformJoules float64
	X86Joules      float64
	IXPJoules      float64
	// JoulesPerRequest is platform energy divided by served responses —
	// the ablation's headline efficiency metric.
	JoulesPerRequest float64

	// QoS accounting against the configured p95 target, counted per
	// governor control window for every mode (the equal-QoS comparison
	// needs violation counts for the off and ondemand runs too).
	QoSTargetP95Ms float64
	QoSWindows     int // post-warmup windows that observed responses
	QoSViolations  int // windows whose p95 exceeded the target

	GovernorActions int // coordinated-governor actuations
	Transitions     int // committed DVFS transitions, both islands

	// Residency is the full-run per-operating-point residency of both
	// islands' state machines (x86 points first).
	Residency []energy.StateResidency
}

// TraceDriver replaces the closed-loop client with an open-loop trace
// replay (see TraceClient): every resolved request is injected at its
// trace arrival time regardless of how the platform is keeping up.
type TraceDriver struct {
	// Reqs is the resolved trace (rubis.ResolveTrace), sorted by arrival.
	Reqs []TraceReq
	// Timeout, when positive, discards responses arriving later than this
	// after the send (abandoned work, as in ClientConfig.Timeout).
	Timeout sim.Time
}

// ExperimentConfig describes one RUBiS run on the two-island testbed.
type ExperimentConfig struct {
	Platform platform.Config
	Server   ServerConfig
	Client   ClientConfig

	// Trace, when non-nil, drives the run from a workload trace instead
	// of the closed-loop Client; the Client field is then ignored.
	Trace *TraceDriver

	// Overload, when non-nil, bounds the tier admission queues and (when
	// Overload.Coordinated) closes the cross-island shed loop. It is
	// independent of Coordinated/Scheme, which select the paper's
	// weight-tuning policy.
	Overload *OverloadSetup

	// Coordinated enables the paper's coord-ixp-dom0 scheme: the IXP's
	// request classifier drives per-request weight Tunes for the tier VMs.
	Coordinated bool
	// Scheme selects the coordination policy when Coordinated is set:
	// SchemeOutstanding (default) tracks per-tier outstanding demand from
	// both traffic directions; SchemeLoadTrack tracks offered load only;
	// SchemeClass is the simple fixed-delta read/write rule. The latter two
	// exist for the policy ablation.
	Scheme Scheme
	// TuneStep is the weight delta per classified request for the class
	// scheme (default 64).
	TuneStep int
	// LoadScale converts profiled demand ms into tune units for the
	// load-tracking scheme (default 1.0).
	LoadScale float64
	// LoadTau is the decay time constant of the load-tracking translation
	// (default 1s).
	LoadTau sim.Time
	// GuestWeight is the initial weight of each tier VM (default 256).
	GuestWeight int

	Warmup   sim.Time // measurement starts here (default 10s)
	Duration sim.Time // total run length including warmup (default 70s)
}

// DefaultExperimentClient returns the calibrated client workload used for
// the paper's RUBiS tables and figures: 80 concurrent sessions of the
// read-write (bid) mix with population-level write surges every 8s.
func DefaultExperimentClient() ClientConfig {
	return ClientConfig{
		Sessions:           80,
		RequestsPerSession: 60,
		ThinkTime:          400 * sim.Millisecond,
		Phases:             true,
		PhasePeriod:        8 * sim.Second,
		PhaseWindow:        3 * sim.Second,
		WriteBiasIn:        10,
		WriteBiasOut:       0.05,
		PhaseThinkFactor:   1, // composition surge only, no rate surge
	}
}

func (c *ExperimentConfig) applyDefaults() {
	if c.GuestWeight == 0 {
		c.GuestWeight = 256
	}
	if c.Client == (ClientConfig{}) {
		c.Client = DefaultExperimentClient()
	}
	if c.LoadScale == 0 {
		c.LoadScale = 1
	}
	if c.LoadTau == 0 {
		c.LoadTau = sim.Second
	}
	if c.Warmup == 0 {
		c.Warmup = 10 * sim.Second
	}
	if c.Duration == 0 {
		c.Duration = 70 * sim.Second
	}
}

// Result carries everything the paper's RUBiS tables and figures report.
type Result struct {
	Metrics *Metrics

	// Per-tier mean CPU utilization over the measurement interval, percent
	// of one CPU (Figure 5), plus Dom0 for completeness.
	WebUtil, AppUtil, DBUtil, Dom0Util float64
	// TotalUtil is the summed tier utilization (the paper's Table 2 basis).
	TotalUtil float64
	// Throughput in requests/second and the derived platform efficiency.
	Throughput float64
	Efficiency float64

	// Coordination-plane counters. TunesSent counts the IXP agent's
	// demand-driven Tunes; TunesSelfSent the x86 agent's own boosts (the
	// overload plane's delay-only pressure valve routes through the
	// controller back to x86).
	TunesSent     uint64
	TunesSelfSent uint64
	TunesApplied  uint64
	// Final weights, to inspect where the policy drove the scheduler.
	FinalWeights map[string]int

	// Robust aggregates the coordination plane's reliability counters
	// (fault injection, ack/retry transport, leases, degradation).
	Robust platform.Robustness

	// Overload aggregates the overload-control plane's counters (queue
	// sheds and expiries, NIC-side early sheds, trigger translation).
	Overload OverloadReport

	// Energy aggregates the energy subsystem's measurements (zero value
	// with Enabled=false unless Platform.Energy armed the subsystem).
	Energy EnergyReport
}

// utilWindow measures a domain's utilization over [from, to) using busy
// snapshots, so pre-warmup activity is excluded.
type utilWindow struct {
	dom  *xen.Domain
	at   sim.Time
	busy sim.Time
}

func (w *utilWindow) snapshot(now sim.Time) {
	w.at = now
	w.busy = w.dom.Meter().Busy()
}

func (w *utilWindow) utilization(now sim.Time) float64 {
	if now <= w.at {
		return 0
	}
	return float64(w.dom.Meter().Busy()-w.busy) / float64(now-w.at) * 100
}

// RunExperiment assembles the testbed, deploys RUBiS, optionally arms the
// coordination policy, runs to completion, and returns the measurements.
func RunExperiment(cfg ExperimentConfig) *Result {
	cfg.applyDefaults()
	var ov *OverloadSetup
	if cfg.Overload != nil {
		o := *cfg.Overload
		o.applyDefaults()
		ov = &o
		cfg.Server.Overload = &OverloadConfig{
			QueueCap:      o.QueueCap,
			QueueDeadline: o.QueueDeadline,
			Policy:        o.Policy,
			Threshold:     o.Threshold,
		}
		if o.Coordinated {
			cfg.Platform.OverloadControl = &core.OverloadControlConfig{
				Upstream:   platform.IXPIsland,
				ShedStep:   o.ShedStep,
				BoostDelta: o.BoostDelta,
			}
			cfg.Platform.TriggerRefill = o.TriggerRefill
			cfg.Platform.TriggerBurst = o.TriggerBurst
		}
		if o.Breaker {
			cfg.Platform.Reliable = true
			seed := cfg.Platform.Seed
			if seed == 0 {
				seed = 1
			}
			cfg.Platform.Breaker = &overload.BreakerConfig{Seed: seed}
		}
	}
	if cfg.Coordinated && cfg.Platform.MinGuestWeight == 0 {
		// In the outstanding-load translation the weight floor is the base
		// allocation; Tunes add transient priority on top of it, so an
		// unloaded tier never drops below its uncoordinated share.
		cfg.Platform.MinGuestWeight = cfg.GuestWeight
		cfg.Platform.MaxGuestWeight = 2048
	}
	p := platform.New(cfg.Platform)
	web := p.AddGuest("WebServer", cfg.GuestWeight)
	app := p.AddGuest("AppServer", cfg.GuestWeight)
	db := p.AddGuest("DBServer", cfg.GuestWeight)

	cfg.Server.Flight = cfg.Platform.Flight
	srv := NewServer(p.Sim, cfg.Server, web, app, db, p.Host)

	// Both workload drivers expose the same minimal surface; everything
	// below this point is driver-agnostic.
	var client interface {
		Start()
		Metrics() *Metrics
	}
	if cfg.Trace != nil {
		client = NewTraceClient(p.Sim, TraceClientConfig{
			Reqs:    cfg.Trace.Reqs,
			WebVM:   web.ID(),
			Warmup:  cfg.Warmup,
			Timeout: cfg.Trace.Timeout,
		}, p.IXP)
	} else {
		clientCfg := cfg.Client
		clientCfg.WebVM = web.ID()
		clientCfg.Warmup = cfg.Warmup
		client = NewClient(p.Sim, clientCfg, p.IXP)
	}

	if ov != nil && ov.Coordinated {
		// Close the cross-island loop. Host side: a tier tripping its
		// delay detector raises a Trigger (token-bucket damped in the x86
		// agent), which the controller translates into a weight boost for
		// the tier plus an upstream shed-rate adjustment. IXP side: the
		// shed adjustments drive a per-class shedder gating admission
		// before PCIe; its rates decay back toward zero when the overload
		// episode ends.
		seed := cfg.Platform.Seed
		if seed == 0 {
			seed = 1
		}
		shedder := overload.NewShedder(p.Sim, overload.ShedderConfig{Seed: seed + 1000})
		shedder.SetFlightRecorder(cfg.Platform.Flight, "ixp-gate")
		p.IXPAct.SetShedControl(func(_, delta int) error {
			shedder.Adjust(delta)
			return nil
		})
		ovCatalog := DefaultCatalog()
		p.IXP.SetAdmission(func(pkt *netsim.Packet) (*netsim.Packet, bool) {
			req, isReq := pkt.Payload.(*Request)
			if !isReq || pkt.SrcVM != -1 {
				return nil, true // non-request traffic is never gated
			}
			if !shedder.ShouldShed(classFor(ovCatalog[req.Type].Kind)) {
				return nil, true
			}
			req.Shed = true
			return &netsim.Packet{
				ID:      pkt.ID,
				Size:    shedRespBytes,
				SrcVM:   pkt.DstVM,
				DstVM:   -1,
				Class:   pkt.Class,
				Payload: req,
				Created: p.Sim.Now(),
			}, false
		})
		srv.SetOverloadNotify(func(tier Tier, overloaded bool) {
			if overloaded {
				p.X86Agent.SendTrigger(platform.X86Island, srv.TierDomain(tier).ID())
			}
		})
		// Sustained overload must keep pressure on the control loop: the
		// detector only edges once per episode and the shedder's rates
		// decay, so re-evaluate every refill period. Two severity levels:
		// a tier actually shedding or expiring (its bounded queue is
		// insufficient) re-raises the full Trigger — boost plus upstream
		// NIC shedding — while delay-only overload sends a plain boost
		// Tune, which raises the tier's CPU share without discarding
		// traffic the queues can still absorb. The agent's token buckets
		// damp both streams.
		var lastPressure [NumTiers]uint64
		p.Sim.Ticker(ov.TriggerRefill, func() {
			worst, worstDelay := Tier(-1), sim.Time(0)
			for t := TierWeb; t < NumTiers; t++ {
				st := srv.Queue(t).Stats()
				pressure := st.Shed + st.Expired
				if pressure > lastPressure[t] {
					lastPressure[t] = pressure
					p.X86Agent.SendTrigger(platform.X86Island, srv.TierDomain(t).ID())
					continue
				}
				if d := srv.Detector(t); d != nil && d.Overloaded() && d.Smoothed() > worstDelay {
					worst, worstDelay = t, d.Smoothed()
				}
			}
			// Boost only the slowest delay-overloaded tier: boosting every
			// tier at once just starves dom0's packet processing.
			if worst >= 0 {
				p.X86Agent.SendTune(platform.X86Island, srv.TierDomain(worst).ID(), ov.BoostDelta)
			}
		})
	}

	coordinating := false
	if cfg.Coordinated {
		coordinating = true
		tiers := core.TierEntities{Web: web.ID(), App: app.ID(), DB: db.ID()}
		catalog := DefaultCatalog()
		demands := func(pkt *netsim.Packet) (webMs, appMs, dbMs float64, ok bool) {
			req, isReq := pkt.Payload.(*Request)
			if !isReq {
				return 0, 0, 0, false
			}
			prof := catalog[req.Type]
			return prof.Web.Milliseconds(), prof.App.Milliseconds(), prof.DB.Milliseconds(), true
		}
		switch cfg.Scheme {
		case SchemeClass:
			policy := core.NewRequestClassPolicy(p.IXPAgent, platform.X86Island, tiers, cfg.TuneStep)
			p.IXP.AddDPI(func(pkt *netsim.Packet) {
				req, ok := pkt.Payload.(*Request)
				if !ok || pkt.SrcVM != -1 {
					return // only classify inbound client requests
				}
				policy.OnRequest(catalog[req.Type].Kind)
			})
		case SchemeLoadTrack:
			p.X86Act.EnableLoadTracking(p.Sim, cfg.LoadTau, 100*sim.Millisecond)
			policy := core.NewLoadTrackPolicy(p.IXPAgent, platform.X86Island, tiers)
			policy.Scale = cfg.LoadScale
			p.IXP.AddDPI(func(pkt *netsim.Packet) {
				if pkt.SrcVM != -1 {
					return
				}
				if w, a, d, ok := demands(pkt); ok {
					policy.OnRequest(w, a, d)
				}
			})
		default: // SchemeOutstanding
			// Slow decay heals any drift of the outstanding-demand estimate
			// (e.g. responses whose requests predate coordination start).
			p.X86Act.EnableLoadTracking(p.Sim, 20*sim.Second, 250*sim.Millisecond)
			policy := core.NewOutstandingLoadPolicy(p.IXPAgent, platform.X86Island, tiers)
			policy.Scale = cfg.LoadScale
			p.IXP.AddDPI(func(pkt *netsim.Packet) {
				if pkt.SrcVM != -1 {
					return
				}
				if w, a, d, ok := demands(pkt); ok {
					policy.OnRequest(w, a, d)
				}
			})
			p.IXP.AddTxDPI(func(pkt *netsim.Packet) {
				if w, a, d, ok := demands(pkt); ok {
					policy.OnResponse(w, a, d)
				}
			})
		}
	}

	// Energy control loop: one experiment-level ticker owns the
	// windowed-p95 drain. It counts QoS windows and violations for every
	// governor mode (the equal-QoS ablation needs violation counts for the
	// off and ondemand runs too) and, in coordinated mode, feeds the
	// governor's Step. The client only records post-warmup responses, so
	// the governor sees no signal — and takes no action — during warmup.
	var qosWindows, qosViolations int
	if p.EnergyMeter != nil {
		ecfg := p.EnergyCfg
		metrics := client.Metrics()
		p.Sim.Ticker(ecfg.Period, func() {
			p95ms, n := metrics.WindowP95()
			p95 := sim.Time(p95ms * float64(sim.Millisecond))
			if n > 0 {
				qosWindows++
				if p95 > ecfg.QoSTargetP95 {
					qosViolations++
				}
			}
			if p.EnergyGov != nil {
				p.EnergyGov.Step(p95, n)
			}
		})
		if p.EnergyGov != nil {
			// The last escalation rung: when both islands already run flat
			// out, boost the credit weight of the tier with the deepest
			// admission queue — the same joint actuator vocabulary the
			// overload plane uses.
			p.EnergyGov.SetBoostBottleneck(func() {
				worst, depth := TierWeb, -1
				for t := TierWeb; t < NumTiers; t++ {
					if d := srv.Queue(t).Waiting(); d > depth {
						worst, depth = t, d
					}
				}
				p.X86Agent.SendTune(platform.X86Island, srv.TierDomain(worst).ID(), 64)
			})
		}
	}

	// Utilization windows snapshot at warmup so Figure 5 reflects steady
	// state only; the energy ledgers snapshot at the same boundary so
	// joules cover the measurement interval.
	windows := []*utilWindow{{dom: web}, {dom: app}, {dom: db}, {dom: p.Dom0}}
	var energyWarm map[string]int64
	p.Sim.At(cfg.Warmup, func() {
		for _, w := range windows {
			p.HV.TotalUtilization(0, w.dom) // folds in-progress run intervals into the meter
			w.snapshot(p.Sim.Now())
		}
		if p.EnergyMeter != nil {
			p.EnergyMeter.Flush() // close the partial accrual window at the boundary
			energyWarm = p.EnergyMeter.Snapshot()
		}
	})

	client.Start()
	p.Sim.RunUntil(cfg.Duration)
	now := p.Sim.Now()
	for _, w := range windows {
		p.HV.TotalUtilization(0, w.dom)
	}

	res := &Result{
		Metrics:      client.Metrics(),
		WebUtil:      windows[0].utilization(now),
		AppUtil:      windows[1].utilization(now),
		DBUtil:       windows[2].utilization(now),
		Dom0Util:     windows[3].utilization(now),
		FinalWeights: map[string]int{},
	}
	res.TotalUtil = res.WebUtil + res.AppUtil + res.DBUtil
	res.Throughput = client.Metrics().Throughput(now)
	res.Efficiency = stats.PlatformEfficiency(res.Throughput, res.TotalUtil)
	if coordinating {
		res.TunesSent = p.IXPAgent.Stats().TunesSent
		res.TunesSelfSent = p.X86Agent.Stats().TunesSent
		res.TunesApplied = p.X86Agent.Stats().TunesApplied
	}
	for _, d := range []*xen.Domain{web, app, db} {
		res.FinalWeights[d.Name()] = d.Weight()
	}
	res.Robust = p.Robustness()

	for t := TierWeb; t < NumTiers; t++ {
		res.Overload.Tiers[t] = srv.Queue(t).Stats()
		if d := srv.Detector(t); d != nil {
			res.Overload.OverloadEpisodes += d.Stats().Episodes
		}
	}
	res.Overload.IXPShed = p.IXP.RxShed()
	res.Overload.IXPDropped = p.IXP.RxDropped()
	res.Overload.ServerSheds = srv.Sheds()
	res.Overload.ShedResponses = client.Metrics().ShedResponses()
	res.Overload.Abandoned = client.Metrics().Abandoned()
	res.Overload.TriggersSent = p.X86Agent.Stats().TriggersSent
	res.Overload.ShedTunes = res.Robust.ShedTunes
	res.Overload.BoostTunes = res.Robust.BoostTunes
	res.Overload.ServedP95Ms = client.Metrics().ServedP95()

	if p.EnergyMeter != nil {
		p.EnergyMeter.Flush()
		end := p.EnergyMeter.Snapshot()
		rep := EnergyReport{
			Enabled:        true,
			Governor:       p.EnergyCfg.Governor,
			QoSTargetP95Ms: p.EnergyCfg.QoSTargetP95.Milliseconds(),
			QoSWindows:     qosWindows,
			QoSViolations:  qosViolations,
			Transitions:    p.X86DVFS.Transitions() + p.IXPDVFS.Transitions(),
			Residency:      append(p.X86DVFS.Residency(), p.IXPDVFS.Residency()...),
		}
		rep.PlatformJoules = energy.Joules(end["platform"] - energyWarm["platform"])
		rep.X86Joules = energy.Joules(end[platform.X86Island] - energyWarm[platform.X86Island])
		rep.IXPJoules = energy.Joules(end[platform.IXPIsland] - energyWarm[platform.IXPIsland])
		if n := client.Metrics().Responses(); n > 0 {
			rep.JoulesPerRequest = rep.PlatformJoules / float64(n)
		}
		if p.EnergyGov != nil {
			rep.GovernorActions = p.EnergyGov.Actions()
		}
		res.Energy = rep
	}
	return res
}
