package rubis

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/sim"
)

func TestRequestTypeNames(t *testing.T) {
	if Register.String() != "Register" || AboutMe.String() != "AboutMe" {
		t.Fatal("type names wrong")
	}
	if got := RequestType(99).String(); !strings.Contains(got, "99") {
		t.Fatalf("out-of-range name = %q", got)
	}
	if len(AllRequestTypes()) != 16 {
		t.Fatalf("NumRequestTypes = %d, want 16 (Table 1)", NumRequestTypes)
	}
	seen := map[string]bool{}
	for _, rt := range AllRequestTypes() {
		if seen[rt.String()] {
			t.Fatalf("duplicate name %s", rt)
		}
		seen[rt.String()] = true
	}
}

func TestCatalogEncodesProfilingInsight(t *testing.T) {
	cat := DefaultCatalog()
	for _, rt := range AllRequestTypes() {
		p := cat[rt]
		if p.Web <= 0 || p.App <= 0 {
			t.Fatalf("%s has non-positive web/app demand", rt)
		}
		if p.ReqBytes <= 0 || p.RespBytes <= 0 {
			t.Fatalf("%s has non-positive packet sizes", rt)
		}
		if p.TotalDemand() != p.Web+p.App+p.DB {
			t.Fatalf("%s TotalDemand wrong", rt)
		}
		switch p.Kind {
		case core.WriteRequest:
			// Writes drive app-database interactions: DB dominates.
			if p.DB <= p.Web {
				t.Fatalf("write type %s has DB (%v) <= Web (%v)", rt, p.DB, p.Web)
			}
		case core.ReadRequest:
			// Browsing is web/app heavy with (nearly) no DB processing.
			if p.DB > p.Web {
				t.Fatalf("read type %s has DB (%v) > Web (%v)", rt, p.DB, p.Web)
			}
		default:
			t.Fatalf("%s has no class", rt)
		}
	}
	// Pure static content must have zero DB demand.
	for _, rt := range []RequestType{Browse, BrowseCategories, BrowseRegions, BrowseCategoriesInRegion, SellItemForm} {
		if cat[rt].DB != 0 {
			t.Fatalf("static type %s has DB demand %v", rt, cat[rt].DB)
		}
	}
}

func TestMixesReachAllStates(t *testing.T) {
	for _, m := range []*Mix{BrowsingMix(), BidMix()} {
		r := sim.NewRand(3)
		seen := map[RequestType]bool{}
		cur := m.First(r)
		for i := 0; i < 20000; i++ {
			seen[cur] = true
			cur = m.Next(r, cur)
		}
		if m.Name() == "bid" && len(seen) < 14 {
			t.Fatalf("bid mix visited only %d states", len(seen))
		}
		if m.Name() == "browsing" {
			cat := DefaultCatalog()
			for rt := range seen {
				if cat[rt].Kind == core.WriteRequest {
					t.Fatalf("browsing mix produced write type %s", rt)
				}
			}
		}
	}
}

func TestBidMixWriteFraction(t *testing.T) {
	m := BidMix()
	r := sim.NewRand(5)
	cat := DefaultCatalog()
	writes := 0
	const n = 20000
	cur := m.First(r)
	for i := 0; i < n; i++ {
		if cat[cur].Kind == core.WriteRequest {
			writes++
		}
		cur = m.Next(r, cur)
	}
	frac := float64(writes) / n
	if frac < 0.15 || frac > 0.55 {
		t.Fatalf("bid mix write fraction = %.2f, want a substantial minority", frac)
	}
}

func TestMixWriteBias(t *testing.T) {
	m := BidMix()
	cat := DefaultCatalog()
	frac := func(bias float64) float64 {
		r := sim.NewRand(7)
		writes := 0
		const n = 20000
		cur := m.First(r)
		for i := 0; i < n; i++ {
			if cat[cur].Kind == core.WriteRequest {
				writes++
			}
			cur = m.NextBiased(r, cur, bias)
		}
		return float64(writes) / n
	}
	low, mid, high := frac(0.05), frac(1), frac(10)
	if !(low < mid && mid < high) {
		t.Fatalf("write bias not monotone: %.2f, %.2f, %.2f", low, mid, high)
	}
	if low > 0.15 {
		t.Fatalf("damped write fraction = %.2f, want small", low)
	}
	if high < 0.4 {
		t.Fatalf("surged write fraction = %.2f, want write-heavy", high)
	}
}

func TestMixUnknownStateFallsBackToStart(t *testing.T) {
	m := BrowsingMix()
	r := sim.NewRand(1)
	// PutBid has no transitions in the browsing mix.
	next := m.Next(r, PutBid)
	if int(next) < 0 || int(next) >= NumRequestTypes {
		t.Fatalf("fallback produced invalid type %d", next)
	}
}

func TestMetricsAccounting(t *testing.T) {
	m := NewMetrics(0)
	m.RecordResponse(Browse, 100*sim.Millisecond)
	m.RecordResponse(Browse, 300*sim.Millisecond)
	m.RecordResponse(PutBid, 1*sim.Second)
	if m.Responses() != 3 {
		t.Fatalf("Responses = %d", m.Responses())
	}
	s := m.TypeSummary(Browse)
	if s.Count() != 2 || s.Mean() != 200 {
		t.Fatalf("Browse summary = %v", s)
	}
	if m.TypeSample(PutBid).Count() != 1 {
		t.Fatal("PutBid sample missing")
	}
	if got := m.Throughput(10 * sim.Second); got != 0.3 {
		t.Fatalf("Throughput = %v", got)
	}
	m.RecordSession(50 * sim.Second)
	m.RecordSession(70 * sim.Second)
	if m.SessionsCompleted() != 2 || m.AvgSessionTime() != 60 {
		t.Fatalf("sessions = %d, avg = %v", m.SessionsCompleted(), m.AvgSessionTime())
	}
	// Overall mean weighted by counts: (100+300+1000)/3.
	if got := m.OverallMean(); got < 466 || got > 467 {
		t.Fatalf("OverallMean = %v", got)
	}
}

func TestMetricsThroughputRespectsWarmup(t *testing.T) {
	m := NewMetrics(10 * sim.Second)
	m.RecordResponse(Browse, sim.Millisecond)
	if got := m.Throughput(20 * sim.Second); got != 0.1 {
		t.Fatalf("Throughput = %v, want 0.1 over 10s window", got)
	}
	if m.Throughput(5*sim.Second) != 0 {
		t.Fatal("Throughput before warmup end should be 0")
	}
}

// newSmallDeployment builds a minimal end-to-end RUBiS testbed.
func newSmallDeployment(t *testing.T, seed int64) (*platform.Platform, *Server, *Client) {
	t.Helper()
	p := platform.New(platform.Config{Seed: seed})
	web := p.AddGuest("WebServer", 256)
	app := p.AddGuest("AppServer", 256)
	db := p.AddGuest("DBServer", 256)
	srv := NewServer(p.Sim, ServerConfig{}, web, app, db, p.Host)
	client := NewClient(p.Sim, ClientConfig{
		Sessions:           4,
		RequestsPerSession: 5,
		ThinkTime:          50 * sim.Millisecond,
		WebVM:              web.ID(),
	}, p.IXP)
	return p, srv, client
}

func TestEndToEndRequestFlow(t *testing.T) {
	p, srv, client := newSmallDeployment(t, 2)
	client.Start()
	p.Sim.RunUntil(20 * sim.Second)
	if srv.Served() == 0 {
		t.Fatal("no requests served")
	}
	if client.Metrics().Responses() != srv.Served() {
		t.Fatalf("responses %d != served %d", client.Metrics().Responses(), srv.Served())
	}
	if client.Metrics().SessionsCompleted() == 0 {
		t.Fatal("no sessions completed")
	}
	// Every response time is positive and below the run length.
	for _, rt := range AllRequestTypes() {
		s := client.Metrics().TypeSummary(rt)
		if s.Count() > 0 && (s.Min() <= 0 || s.Max() > 20000) {
			t.Fatalf("%s latency out of range: %v", rt, s)
		}
	}
}

func TestSessionsMaintainConstantPopulation(t *testing.T) {
	p, _, client := newSmallDeployment(t, 3)
	client.Start()
	p.Sim.RunUntil(10 * sim.Second)
	if got := client.ActiveSessions(); got != 4 {
		t.Fatalf("ActiveSessions = %d, want constant 4", got)
	}
}

func TestClientStopCeasesTraffic(t *testing.T) {
	p, _, client := newSmallDeployment(t, 4)
	client.Start()
	p.Sim.RunUntil(5 * sim.Second)
	client.Stop()
	issued := client.Issued()
	p.Sim.RunUntil(10 * sim.Second)
	if client.Issued() != issued {
		t.Fatalf("requests issued after Stop: %d -> %d", issued, client.Issued())
	}
}

func TestServerPoolInvariant(t *testing.T) {
	p, srv, client := newSmallDeployment(t, 5)
	client.Start()
	p.Sim.RunUntil(20 * sim.Second)
	client.Stop()
	p.Sim.RunUntil(40 * sim.Second) // drain in-flight requests
	w, a, d := srv.PoolWaiting()
	if w != 0 || a != 0 || d != 0 {
		t.Fatalf("pool waiters after drain: %d/%d/%d", w, a, d)
	}
	if srv.Queue(TierWeb).Idle() != srv.cfg.WebWorkers {
		t.Fatalf("web workers leaked: %d of %d free", srv.Queue(TierWeb).Idle(), srv.cfg.WebWorkers)
	}
	if srv.Queue(TierApp).Idle() != srv.cfg.AppWorkers || srv.Queue(TierDB).Idle() != srv.cfg.DBWorkers {
		t.Fatal("app/db workers leaked")
	}
}

func TestExperimentDeterminism(t *testing.T) {
	run := func() (float64, uint64) {
		r := RunExperiment(ExperimentConfig{
			Duration: 20 * sim.Second,
			Warmup:   5 * sim.Second,
			Client: ClientConfig{
				Sessions: 10, RequestsPerSession: 10,
				ThinkTime: 100 * sim.Millisecond, Phases: true,
			},
		})
		return r.Throughput, r.Metrics.Responses()
	}
	t1, n1 := run()
	t2, n2 := run()
	if t1 != t2 || n1 != n2 {
		t.Fatalf("nondeterministic: (%v,%d) vs (%v,%d)", t1, n1, t2, n2)
	}
}

func TestCoordinatedExperimentSendsTunes(t *testing.T) {
	r := RunExperiment(ExperimentConfig{
		Coordinated: true,
		Duration:    20 * sim.Second,
		Warmup:      5 * sim.Second,
		Client: ClientConfig{
			Sessions: 10, RequestsPerSession: 10,
			ThinkTime: 100 * sim.Millisecond, Phases: true,
		},
	})
	if r.TunesSent == 0 || r.TunesApplied == 0 {
		t.Fatalf("coordination inactive: sent=%d applied=%d", r.TunesSent, r.TunesApplied)
	}
	if len(r.FinalWeights) != 3 {
		t.Fatalf("FinalWeights = %v", r.FinalWeights)
	}
	// Load tracking must have moved at least one weight off the default.
	moved := false
	for _, w := range r.FinalWeights {
		if w != 256 {
			moved = true
		}
	}
	if !moved {
		t.Fatalf("weights never moved: %v", r.FinalWeights)
	}
}

func TestSchemeNames(t *testing.T) {
	if SchemeOutstanding.String() != "outstanding" || SchemeClass.String() != "class" ||
		SchemeLoadTrack.String() != "loadtrack" || Scheme(9).String() != "unknown" {
		t.Fatal("scheme names wrong")
	}
}

func TestClassSchemeExperimentRuns(t *testing.T) {
	r := RunExperiment(ExperimentConfig{
		Coordinated: true,
		Scheme:      SchemeClass,
		Duration:    15 * sim.Second,
		Warmup:      5 * sim.Second,
		Client: ClientConfig{
			Sessions: 8, RequestsPerSession: 10,
			ThinkTime: 100 * sim.Millisecond, Phases: true,
		},
	})
	if r.TunesSent == 0 {
		t.Fatal("class scheme sent no tunes")
	}
}

func TestLoadTrackSchemeExperimentRuns(t *testing.T) {
	r := RunExperiment(ExperimentConfig{
		Coordinated: true,
		Scheme:      SchemeLoadTrack,
		Duration:    15 * sim.Second,
		Warmup:      5 * sim.Second,
		Client: ClientConfig{
			Sessions: 8, RequestsPerSession: 10,
			ThinkTime: 100 * sim.Millisecond, Phases: true,
		},
	})
	if r.TunesSent == 0 {
		t.Fatal("loadtrack scheme sent no tunes")
	}
}

func TestUtilizationWindowExcludesWarmup(t *testing.T) {
	r := RunExperiment(ExperimentConfig{
		Duration: 15 * sim.Second,
		Warmup:   5 * sim.Second,
		Client: ClientConfig{
			Sessions: 6, RequestsPerSession: 10,
			ThinkTime: 100 * sim.Millisecond,
		},
	})
	for name, u := range map[string]float64{
		"web": r.WebUtil, "app": r.AppUtil, "db": r.DBUtil, "dom0": r.Dom0Util,
	} {
		if u < 0 || u > 100 {
			t.Fatalf("%s utilization = %v out of range", name, u)
		}
	}
	if r.TotalUtil <= 0 {
		t.Fatal("no utilization measured")
	}
	if r.Efficiency <= 0 {
		t.Fatal("no efficiency computed")
	}
}

func TestMixValidationQuick(t *testing.T) {
	// Biased draws always return valid request types for any bias.
	f := func(seed int64, biasRaw uint8) bool {
		bias := 0.05 + float64(biasRaw)/8
		m := BidMix()
		r := sim.NewRand(seed)
		cur := m.First(r)
		for i := 0; i < 200; i++ {
			cur = m.NextBiased(r, cur, bias)
			if int(cur) < 0 || int(cur) >= NumRequestTypes {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
