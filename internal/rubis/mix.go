package rubis

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/sim"
)

// writeKind aliases the write request class for brevity in the mix tables.
const writeKind = core.WriteRequest

// defaultCatalog is the shared read-only catalog used by biased draws.
var defaultCatalog = DefaultCatalog()

// transition is one weighted edge of the session state machine.
type transition struct {
	next   RequestType
	weight float64
}

// Mix is a client workload: a session state machine whose probabilistic
// transitions emulate user browsing behaviour, as in the standard RUBiS
// client. Two mixes ship with the benchmark: browsing (read-only) and
// bid/browse/sell (read-write).
type Mix struct {
	name  string
	start []transition
	trans map[RequestType][]transition
}

// Name returns the mix name.
func (m *Mix) Name() string { return m.name }

// First draws a session's first request type.
func (m *Mix) First(r *sim.Rand) RequestType { return draw(r, m.start) }

// Next draws the request type following cur.
func (m *Mix) Next(r *sim.Rand, cur RequestType) RequestType {
	return m.NextBiased(r, cur, 1)
}

// NextBiased draws the next request type with the weight of write-class
// transitions multiplied by writeBias. A bias of 1 is the neutral mix;
// biases above 1 emulate population-wide write surges (bid storms around
// auction closings), biases below 1 suppress writes. The client uses this
// to generate the read/write phase structure the paper's coordination
// policy tracks.
func (m *Mix) NextBiased(r *sim.Rand, cur RequestType, writeBias float64) RequestType {
	edges, ok := m.trans[cur]
	if !ok || len(edges) == 0 {
		return m.First(r)
	}
	return drawBiased(r, edges, writeBias)
}

func draw(r *sim.Rand, edges []transition) RequestType {
	return drawBiased(r, edges, 1)
}

func drawBiased(r *sim.Rand, edges []transition, writeBias float64) RequestType {
	weights := make([]float64, len(edges))
	for i, e := range edges {
		w := e.weight
		if writeBias != 1 && defaultCatalog[e.next].Kind == writeKind {
			w *= writeBias
		}
		weights[i] = w
	}
	return edges[r.Choice(weights)].next
}

// validate checks that every referenced type is in range.
func (m *Mix) validate() error {
	check := func(edges []transition) error {
		for _, e := range edges {
			if e.next < 0 || int(e.next) >= NumRequestTypes {
				return fmt.Errorf("rubis: mix %q references bad type %d", m.name, e.next)
			}
			if e.weight <= 0 {
				return fmt.Errorf("rubis: mix %q has non-positive weight", m.name)
			}
		}
		return nil
	}
	if err := check(m.start); err != nil {
		return err
	}
	// Iterate sorted keys so that which validation error surfaces first is
	// deterministic across runs.
	froms := make([]RequestType, 0, len(m.trans))
	for from := range m.trans {
		froms = append(froms, from)
	}
	sort.Slice(froms, func(i, j int) bool { return froms[i] < froms[j] })
	for _, from := range froms {
		if err := check(m.trans[from]); err != nil {
			return err
		}
	}
	return nil
}

// BrowsingMix returns the read-only mix: static pages and searches, no
// writes at all. The paper uses it to show that coordination always wins
// when there are no read/write transitions to mispredict.
func BrowsingMix() *Mix {
	m := &Mix{
		name: "browsing",
		start: []transition{
			{Browse, 5}, {BrowseCategories, 3}, {BrowseRegions, 2},
		},
		trans: map[RequestType][]transition{
			Browse:                   {{BrowseCategories, 4}, {BrowseRegions, 3}, {Browse, 1}},
			BrowseCategories:         {{SearchItemsInCategory, 5}, {ViewItem, 2}, {Browse, 1}},
			SearchItemsInCategory:    {{ViewItem, 5}, {SearchItemsInCategory, 2}, {BrowseCategories, 2}},
			BrowseRegions:            {{BrowseCategoriesInRegion, 5}, {Browse, 1}},
			BrowseCategoriesInRegion: {{SearchItemsInRegion, 5}, {BrowseRegions, 1}},
			SearchItemsInRegion:      {{ViewItem, 4}, {SearchItemsInRegion, 2}, {Browse, 1}},
			ViewItem:                 {{Browse, 3}, {BrowseCategories, 3}, {AboutMe, 1}},
			AboutMe:                  {{Browse, 2}, {ViewItem, 1}},
			SellItemForm:             {{Browse, 1}},
		},
	}
	if err := m.validate(); err != nil {
		panic(fmt.Sprintf("rubis: built-in mix table is invalid: %v", err))
	}
	return m
}

// BidMix returns the read-write (bid/browse/sell) mix: browsing
// interleaved with authentication, bidding, buying, selling, and comment
// storms. Its frequent read/write transitions are what expose the
// coordination channel's latency in the paper's Figure 4.
func BidMix() *Mix {
	m := &Mix{
		name: "bid",
		start: []transition{
			{Browse, 4}, {BrowseCategories, 3}, {Register, 1},
		},
		trans: map[RequestType][]transition{
			Register:                 {{Browse, 3}, {SellItemForm, 1}},
			Browse:                   {{BrowseCategories, 4}, {BrowseRegions, 2}, {AboutMe, 1}, {PutBidAuth, 1}},
			BrowseCategories:         {{SearchItemsInCategory, 5}, {ViewItem, 2}, {PutBidAuth, 1}},
			SearchItemsInCategory:    {{ViewItem, 5}, {SearchItemsInCategory, 1}, {PutBidAuth, 1}},
			BrowseRegions:            {{BrowseCategoriesInRegion, 4}, {Browse, 1}, {PutBidAuth, 1}},
			BrowseCategoriesInRegion: {{SearchItemsInRegion, 4}, {BrowseRegions, 1}},
			SearchItemsInRegion:      {{ViewItem, 4}, {Browse, 1}, {PutBidAuth, 1}},
			ViewItem:                 {{PutBidAuth, 4}, {BuyNow, 2}, {Browse, 2}, {PutComment, 1}},
			BuyNow:                   {{Browse, 2}, {ViewItem, 1}},
			PutBidAuth:               {{PutBid, 6}, {Browse, 1}},
			PutBid:                   {{StoreBid, 6}, {ViewItem, 1}},
			StoreBid:                 {{Browse, 2}, {ViewItem, 2}, {PutComment, 1}},
			PutComment:               {{Browse, 2}, {AboutMe, 1}},
			Sell:                     {{Browse, 1}, {SellItemForm, 1}},
			SellItemForm:             {{Sell, 4}, {Browse, 1}},
			AboutMe:                  {{Browse, 2}, {Sell, 1}, {ViewItem, 1}},
		},
	}
	if err := m.validate(); err != nil {
		panic(fmt.Sprintf("rubis: built-in mix table is invalid: %v", err))
	}
	return m
}
