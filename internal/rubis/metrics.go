package rubis

import (
	"repro/internal/sim"
	"repro/internal/stats"
)

// Metrics collects the client-observed performance measures the paper
// reports: per-request-type response-time distributions (Figures 2 and 4,
// Table 1), request throughput, completed sessions and session times
// (Table 2).
type Metrics struct {
	start     sim.Time
	perType   [NumRequestTypes]stats.Sample
	summaries [NumRequestTypes]stats.Summary
	overall   stats.Sample
	window    []float64 // served latencies since the last WindowP95 drain
	responses uint64
	sheds     uint64
	abandoned uint64

	sessionTimes stats.Summary
	completed    int
}

// NewMetrics returns metrics with measurement starting at start.
func NewMetrics(start sim.Time) *Metrics {
	return &Metrics{start: start}
}

// RecordResponse records one served response latency for a request type.
// Shed responses go through RecordShed instead — throughput and the latency
// distributions measure goodput only.
func (m *Metrics) RecordResponse(t RequestType, latency sim.Time) {
	msVal := latency.Milliseconds()
	m.perType[t].Add(msVal)
	m.summaries[t].Add(msVal)
	m.overall.Add(msVal)
	m.window = append(m.window, msVal)
	m.responses++
}

// WindowP95 drains the responses recorded since the previous call and
// returns their p95 latency (milliseconds) with the window's response
// count. The energy governor's control loop owns this window — it is kept
// separate from the overall sample, whose Percentile sorts in place.
func (m *Metrics) WindowP95() (float64, int) {
	n := len(m.window)
	if n == 0 {
		return 0, 0
	}
	var s stats.Sample
	for _, v := range m.window {
		s.Add(v)
	}
	m.window = m.window[:0]
	return s.Percentile(95), n
}

// RecordShed records one shed (admission-control error) response.
func (m *Metrics) RecordShed() { m.sheds++ }

// ShedResponses returns the shed responses the client observed.
func (m *Metrics) ShedResponses() uint64 { return m.sheds }

// RecordAbandon records one page the session gave up on at its timeout.
func (m *Metrics) RecordAbandon() { m.abandoned++ }

// Abandoned returns the pages abandoned at the client timeout.
func (m *Metrics) Abandoned() uint64 { return m.abandoned }

// ServedP95 returns the 95th-percentile served-response latency in
// milliseconds across all request types.
func (m *Metrics) ServedP95() float64 { return m.overall.Percentile(95) }

// RecordSession records one completed session and its duration.
func (m *Metrics) RecordSession(duration sim.Time) {
	m.sessionTimes.Add(duration.Seconds())
	m.completed++
}

// Responses returns the total number of responses observed.
func (m *Metrics) Responses() uint64 { return m.responses }

// Throughput returns the request completion rate in requests/second over
// [start, now).
func (m *Metrics) Throughput(now sim.Time) float64 {
	dur := (now - m.start).Seconds()
	if dur <= 0 {
		return 0
	}
	return float64(m.responses) / dur
}

// SessionsCompleted returns the number of full sessions finished.
func (m *Metrics) SessionsCompleted() int { return m.completed }

// AvgSessionTime returns the mean completed-session duration in seconds.
func (m *Metrics) AvgSessionTime() float64 { return m.sessionTimes.Mean() }

// TypeSummary returns the latency summary (milliseconds) for one type.
func (m *Metrics) TypeSummary(t RequestType) *stats.Summary { return &m.summaries[t] }

// TypeSample returns the raw latency sample (milliseconds) for one type.
func (m *Metrics) TypeSample(t RequestType) *stats.Sample { return &m.perType[t] }

// OverallMean returns the mean response time in milliseconds across all
// request types, weighted by occurrence.
func (m *Metrics) OverallMean() float64 {
	var all stats.Summary
	for i := range m.summaries {
		all.Merge(&m.summaries[i])
	}
	return all.Mean()
}
