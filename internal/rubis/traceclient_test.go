package rubis

import (
	"strings"
	"testing"

	"repro/internal/scenario"
	"repro/internal/sim"
)

func TestResolveTrace(t *testing.T) {
	tr := &scenario.Trace{Reqs: []scenario.Req{
		{T: 0, Class: "browse", Session: 900},
		{T: sim.Millisecond, Class: "kv-set", Session: 7, Size: 512},
		{T: 2 * sim.Millisecond, Class: "browse", Session: 900},
		{T: 3 * sim.Millisecond, Class: "PutBid", Session: 900}, // direct type name
		{T: 4 * sim.Millisecond, Class: "view", Session: 7},
	}}
	reqs, err := ResolveTrace(tr, map[string]string{"view": "AboutMe"})
	if err != nil {
		t.Fatal(err)
	}
	want := []TraceReq{
		{T: 0, Type: Browse, Session: 0, Seq: 0},
		{T: sim.Millisecond, Type: BuyNow, Session: 1, Seq: 0, Size: 512},
		{T: 2 * sim.Millisecond, Type: Browse, Session: 0, Seq: 1},
		{T: 3 * sim.Millisecond, Type: PutBid, Session: 0, Seq: 2},
		{T: 4 * sim.Millisecond, Type: AboutMe, Session: 1, Seq: 1}, // override beats default map
	}
	if len(reqs) != len(want) {
		t.Fatalf("resolved %d requests, want %d", len(reqs), len(want))
	}
	for i := range want {
		if reqs[i] != want[i] {
			t.Errorf("req %d = %+v, want %+v", i, reqs[i], want[i])
		}
	}
}

func TestResolveTraceErrors(t *testing.T) {
	cases := []struct {
		name      string
		trace     *scenario.Trace
		overrides map[string]string
		want      string
	}{
		{"unknown class", &scenario.Trace{Reqs: []scenario.Req{{T: 0, Class: "mystery"}}}, nil, "unknown request class"},
		{"bad map target", &scenario.Trace{Reqs: []scenario.Req{{T: 0, Class: "browse"}}},
			map[string]string{"browse": "NotAType"}, "not a RUBiS request type"},
		{"invalid trace", &scenario.Trace{Reqs: []scenario.Req{{T: 5, Class: "browse"}, {T: 1, Class: "browse"}}}, nil, "before"},
	}
	for _, tc := range cases {
		_, err := ResolveTrace(tc.trace, tc.overrides)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want error containing %q", tc.name, err, tc.want)
		}
	}
}

// traceExperiment runs a short trace-driven experiment for tests.
func traceExperiment(t *testing.T, seed int64, timeout sim.Time) (*Result, []TraceReq) {
	t.Helper()
	tr, err := scenario.Generate(scenario.GenSpec{
		Kind: scenario.FlashCrowd, Duration: 8 * sim.Second, Rate: 25, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := ResolveTrace(tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := ExperimentConfig{
		Trace:    &TraceDriver{Reqs: reqs, Timeout: timeout},
		Warmup:   sim.Second,
		Duration: 12 * sim.Second,
	}
	cfg.Platform.Seed = seed
	return RunExperiment(cfg), reqs
}

// TestTraceDrivenExperiment: a generated trace drives the full platform
// and the served counts are consistent with the trace contents.
func TestTraceDrivenExperiment(t *testing.T) {
	res, reqs := traceExperiment(t, 1, 0)
	if res.Metrics.Responses() == 0 {
		t.Fatal("trace-driven run served nothing")
	}
	if got := res.Metrics.Responses(); got > uint64(len(reqs)) {
		t.Fatalf("served %d responses from a %d-request trace", got, len(reqs))
	}
	if res.Throughput <= 0 {
		t.Error("no throughput measured")
	}
	// Only classes present in the trace may appear in the per-type stats.
	inTrace := make(map[RequestType]bool)
	for _, r := range reqs {
		inTrace[r.Type] = true
	}
	for _, rt := range AllRequestTypes() {
		if !inTrace[rt] && res.Metrics.TypeSummary(rt).Count() != 0 {
			t.Errorf("served %d %v requests the trace never issued", res.Metrics.TypeSummary(rt).Count(), rt)
		}
	}
}

// TestTraceDrivenDeterminism: two runs of the same trace and seed agree
// on every client-observed metric.
func TestTraceDrivenDeterminism(t *testing.T) {
	a, _ := traceExperiment(t, 3, 500*sim.Millisecond)
	b, _ := traceExperiment(t, 3, 500*sim.Millisecond)
	if a.Metrics.Responses() != b.Metrics.Responses() ||
		a.Metrics.Abandoned() != b.Metrics.Abandoned() ||
		a.Metrics.SessionsCompleted() != b.Metrics.SessionsCompleted() ||
		a.Throughput != b.Throughput || a.TotalUtil != b.TotalUtil {
		t.Fatalf("identical configs diverged: %+v vs %+v", a.Metrics, b.Metrics)
	}
}

// TestTraceClientAccounting drives the client directly on a platform and
// checks request conservation: everything issued is eventually served,
// shed, abandoned, or still pending.
func TestTraceClientAccounting(t *testing.T) {
	res, reqs := traceExperiment(t, 5, 400*sim.Millisecond)
	m := res.Metrics
	settled := m.Responses() + m.ShedResponses() + m.Abandoned()
	if settled > uint64(len(reqs)) {
		t.Fatalf("settled %d requests from a %d-request trace", settled, len(reqs))
	}
	// With a timeout armed every request settles one way or another by
	// run end (duration exceeds the trace span plus the timeout), except
	// those sent before warmup, whose settlement is unrecorded.
	if settled == 0 {
		t.Fatal("nothing settled")
	}
}

// TestScaleTraceTimes pins the open-loop load-factor transform.
func TestScaleTraceTimes(t *testing.T) {
	reqs := []TraceReq{{T: 10 * sim.Second}, {T: 20 * sim.Second}}
	ScaleTraceTimes(reqs, 2)
	if reqs[0].T != 5*sim.Second || reqs[1].T != 10*sim.Second {
		t.Fatalf("2x compression gave %v, %v", reqs[0].T, reqs[1].T)
	}
	ScaleTraceTimes(reqs, 0) // no-op
	if reqs[0].T != 5*sim.Second {
		t.Fatal("factor 0 must not rescale")
	}
	unsorted := []TraceReq{{T: 5}, {T: 1}}
	defer func() {
		if recover() == nil {
			t.Fatal("NewTraceClient accepted an unsorted trace")
		}
	}()
	NewTraceClient(sim.New(1), TraceClientConfig{Reqs: unsorted}, nil)
}
