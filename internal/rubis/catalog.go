// Package rubis models the RUBiS benchmark of the paper's evaluation: an
// eBay-like auction site with Apache (web), Tomcat (application), and MySQL
// (database) tiers deployed in separate Xen VMs, driven by an emulated
// client issuing probabilistic browsing sessions.
//
// The model follows the paper's offline profiling insight (§3.1, consistent
// with Magpie and Stewart et al.): each request type induces a
// characteristic amount of work in each tier — browsing (read) requests are
// web/app heavy with practically no database processing, while bid/sell
// (write) requests drive application–database interactions with the
// application server also serving dynamic content. Service demands below
// encode exactly that relationship; absolute values are calibrated so that
// the contended three-VM-on-two-cores prototype produces the paper's
// response-time regime (hundreds of ms to seconds).
package rubis

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
)

// RequestType enumerates the RUBiS request types of Table 1.
type RequestType int

// The sixteen request types reported in the paper's Table 1.
const (
	Register RequestType = iota
	Browse
	BrowseCategories
	SearchItemsInCategory
	BrowseRegions
	BrowseCategoriesInRegion
	SearchItemsInRegion
	ViewItem
	BuyNow
	PutBidAuth
	PutBid
	StoreBid
	PutComment
	Sell
	SellItemForm
	AboutMe
	numRequestTypes
)

// NumRequestTypes is the number of request types in the catalog.
const NumRequestTypes = int(numRequestTypes)

var typeNames = [...]string{
	"Register", "Browse", "BrowseCategories", "SearchItemsInCategory",
	"BrowseRegions", "BrowseCategoriesInRegion", "SearchItemsInRegion",
	"ViewItem", "BuyNow", "PutBidAuth", "PutBid", "StoreBid",
	"PutComment", "Sell", "SellItemForm", "AboutMe",
}

// String returns the request type's Table 1 name.
func (r RequestType) String() string {
	if r < 0 || int(r) >= NumRequestTypes {
		return fmt.Sprintf("RequestType(%d)", int(r))
	}
	return typeNames[r]
}

// AllRequestTypes returns the request types in Table 1 order.
func AllRequestTypes() []RequestType {
	out := make([]RequestType, NumRequestTypes)
	for i := range out {
		out[i] = RequestType(i)
	}
	return out
}

// Profile is the per-tier resource profile of one request type.
type Profile struct {
	Kind core.RequestKind // read (browsing) vs write (servlet) class
	Web  sim.Time         // web-tier CPU demand
	App  sim.Time         // application-tier CPU demand
	DB   sim.Time         // database-tier CPU demand
	// ReqBytes and RespBytes size the request and response packets.
	ReqBytes, RespBytes int
}

// TotalDemand returns the summed CPU demand across tiers.
func (p Profile) TotalDemand() sim.Time { return p.Web + p.App + p.DB }

const ms = sim.Millisecond

// DefaultCatalog returns the calibrated request-type profiles. Browsing
// types serve static HTML/images (web-heavy, negligible DB); write types
// run Java servlets against the backend (app+DB heavy). Write-path DB
// demands dominate, which is what makes the DB tier the transient
// bottleneck during write phases — the effect the coordination policy
// exploits.
func DefaultCatalog() [NumRequestTypes]Profile {
	return [NumRequestTypes]Profile{
		Register:                 {core.WriteRequest, 5 * ms, 10 * ms, 16 * ms, 600, 2 << 10},
		Browse:                   {core.ReadRequest, 14 * ms, 5 * ms, 0, 400, 12 << 10},
		BrowseCategories:         {core.ReadRequest, 19 * ms, 8 * ms, 0, 400, 16 << 10},
		SearchItemsInCategory:    {core.ReadRequest, 11 * ms, 12 * ms, 2 * ms, 500, 20 << 10},
		BrowseRegions:            {core.ReadRequest, 16 * ms, 6 * ms, 0, 400, 14 << 10},
		BrowseCategoriesInRegion: {core.ReadRequest, 14 * ms, 6 * ms, 0, 450, 14 << 10},
		SearchItemsInRegion:      {core.ReadRequest, 7 * ms, 8 * ms, 1 * ms, 500, 10 << 10},
		ViewItem:                 {core.ReadRequest, 14 * ms, 14 * ms, 2 * ms, 450, 18 << 10},
		BuyNow:                   {core.WriteRequest, 4 * ms, 8 * ms, 11 * ms, 500, 4 << 10},
		PutBidAuth:               {core.WriteRequest, 5 * ms, 10 * ms, 14 * ms, 550, 4 << 10},
		PutBid:                   {core.WriteRequest, 4 * ms, 12 * ms, 24 * ms, 600, 5 << 10},
		StoreBid:                 {core.WriteRequest, 4 * ms, 14 * ms, 34 * ms, 650, 3 << 10},
		PutComment:               {core.WriteRequest, 4 * ms, 16 * ms, 42 * ms, 800, 3 << 10},
		Sell:                     {core.WriteRequest, 4 * ms, 8 * ms, 9 * ms, 500, 4 << 10},
		SellItemForm:             {core.ReadRequest, 4 * ms, 4 * ms, 0, 400, 6 << 10},
		AboutMe:                  {core.ReadRequest, 7 * ms, 8 * ms, 5 * ms, 500, 8 << 10},
	}
}

// Request is the workload-level payload carried in request/response packets.
type Request struct {
	Type    RequestType
	Session int
	Seq     int
	SentAt  sim.Time
	// Shed marks a rejected request: the response is a small admission-
	// control error (issued by the NIC's early-admission gate or by a
	// saturated tier), not a served page.
	Shed bool
}
