package rubis

import (
	"testing"

	"repro/internal/overload"
	"repro/internal/sim"
)

// overloadedConfig is a deliberately under-provisioned deployment driven
// well past saturation, with bounded tier queues.
func overloadedConfig(coordinated bool) ExperimentConfig {
	return ExperimentConfig{
		Duration: 25 * sim.Second,
		Warmup:   5 * sim.Second,
		Server: ServerConfig{
			WebWorkers: 8, AppWorkers: 6, DBWorkers: 3,
		},
		Client: ClientConfig{
			Sessions: 120, RequestsPerSession: 30,
			ThinkTime: 50 * sim.Millisecond, Phases: true,
		},
		Overload: &OverloadSetup{
			QueueCap:      16,
			QueueDeadline: 300 * sim.Millisecond,
			Threshold:     100 * sim.Millisecond,
			Coordinated:   coordinated,
		},
	}
}

// TestBoundedQueuesNeverExceedCap is the regression test for the old
// unbounded pools: under heavy overload every tier's admission queue stays
// within its cap, expired entries are counted (never silently run), and
// the admission counters reconcile exactly.
func TestBoundedQueuesNeverExceedCap(t *testing.T) {
	res := RunExperiment(overloadedConfig(false))

	var shed, expired uint64
	for tier := TierWeb; tier < NumTiers; tier++ {
		st := res.Overload.Tiers[tier]
		if st.MaxWaiting > 16 {
			t.Errorf("%v queue reached %d waiters, cap is 16", tier, st.MaxWaiting)
		}
		// Conservation: at any instant (including run end, when requests
		// may still be queued) offered == served + shed + expired + waiting.
		inFlight := st.Offered - st.Served - st.Shed - st.Expired
		if inFlight > uint64(16) {
			t.Errorf("%v counters do not reconcile: offered %d served %d shed %d expired %d",
				tier, st.Offered, st.Served, st.Shed, st.Expired)
		}
		shed += st.Shed
		expired += st.Expired
	}
	if shed == 0 {
		t.Error("no tier shed anything despite 120 sessions on 8/6/3 workers")
	}
	if expired == 0 {
		t.Error("no queued request expired despite the 300ms deadline")
	}
	if res.Overload.ServerSheds != shed+expired {
		t.Errorf("server issued %d shed responses, tiers shed %d + expired %d",
			res.Overload.ServerSheds, shed, expired)
	}
	if res.Overload.ShedResponses == 0 {
		t.Error("client never observed a shed response")
	}
	if res.Overload.OverloadEpisodes == 0 {
		t.Error("no detector episode despite saturation")
	}
	if res.Throughput <= 0 {
		t.Error("no goodput at all — shedding should protect some service")
	}
}

// TestCoordinatedOverloadShedsAtNIC exercises the full cross-island loop:
// tier overload raises Triggers, the controller issues weight boosts and
// upstream shed adjustments, and the IXP's early-admission gate rejects
// traffic before it crosses PCIe.
func TestCoordinatedOverloadShedsAtNIC(t *testing.T) {
	res := RunExperiment(overloadedConfig(true))
	ov := res.Overload
	if ov.TriggersSent == 0 {
		t.Fatal("no overload Trigger left the x86 agent")
	}
	if ov.BoostTunes == 0 || ov.ShedTunes == 0 {
		t.Fatalf("controller translation idle: boosts=%d sheds=%d", ov.BoostTunes, ov.ShedTunes)
	}
	if ov.IXPShed == 0 {
		t.Fatal("NIC admission gate never shed despite upstream adjustments")
	}
	if ov.ShedResponses == 0 {
		t.Fatal("client never observed a shed response")
	}
	if res.Throughput <= 0 {
		t.Fatal("coordinated shedding extinguished all goodput")
	}
}

// TestOverloadRunDeterminism pins replay determinism of the full
// coordinated overload plane (private RNG streams must not leak into the
// main event sequence).
func TestOverloadRunDeterminism(t *testing.T) {
	run := func() (float64, uint64, uint64, overload.QueueStats) {
		r := RunExperiment(overloadedConfig(true))
		return r.Throughput, r.Overload.IXPShed, r.Overload.ServerSheds, r.Overload.Tiers[TierDB]
	}
	g1, i1, s1, q1 := run()
	g2, i2, s2, q2 := run()
	if g1 != g2 || i1 != i2 || s1 != s2 || q1 != q2 {
		t.Fatalf("nondeterministic overload run:\n(%v,%d,%d,%+v)\n(%v,%d,%d,%+v)",
			g1, i1, s1, q1, g2, i2, s2, q2)
	}
}
