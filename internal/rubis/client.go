package rubis

import (
	"repro/internal/ixp"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// ClientConfig shapes the emulated RUBiS client (deployed on a separate
// host in the prototype; here it injects packets directly at the IXP wire).
type ClientConfig struct {
	Sessions           int      // concurrent user sessions (default 60)
	RequestsPerSession int      // requests per session (default 40)
	ThinkTime          sim.Time // mean exponential think time (default 500ms)
	Mix                *Mix     // workload mix (default BidMix)
	WebVM              int      // destination VM for request traffic
	Warmup             sim.Time // responses before this time are not recorded

	// ShedBackoff is the mean pause a session takes after a shed (error)
	// response before its next request — Retry-After semantics. Without it
	// fast shed responses make rejected sessions spin, inflating offered
	// load past what admission control saved (default 2s).
	ShedBackoff sim.Time

	// Timeout, when positive, makes sessions abandon a page that has not
	// answered by then and move on (after a ShedBackoff pause). The server
	// keeps working on the abandoned request — the wasted work that makes
	// uncontrolled overload collapse goodput, and the reason admission
	// control sheds early instead. A late response to an abandoned page is
	// discarded and never counted as served. 0 disables (the default):
	// sessions wait forever, as the calibrated baseline figures assume.
	Timeout sim.Time

	// Phases, when enabled, superimposes population-wide write surges on
	// the mix: during a window of PhaseWindow every PhasePeriod, write-class
	// transitions are favored by WriteBiasIn; outside it they are damped by
	// WriteBiasOut. This emulates the correlated bidding waves (auction
	// closings) that give the aggregate request stream the read/write phase
	// structure the paper's coordination policy tracks — and the rapid
	// read/write transitions at window edges that expose the coordination
	// channel's latency (§3.1).
	Phases           bool
	PhasePeriod      sim.Time // default 8s
	PhaseWindow      sim.Time // default 3s
	WriteBiasIn      float64  // default 6
	WriteBiasOut     float64  // default 0.15
	PhaseThinkFactor float64  // in-window think-time multiplier (default 0.4)
}

func (c *ClientConfig) applyDefaults() {
	if c.Sessions == 0 {
		c.Sessions = 60
	}
	if c.RequestsPerSession == 0 {
		c.RequestsPerSession = 40
	}
	if c.ThinkTime == 0 {
		c.ThinkTime = 500 * sim.Millisecond
	}
	if c.Mix == nil {
		c.Mix = BidMix()
	}
	if c.PhasePeriod == 0 {
		c.PhasePeriod = 8 * sim.Second
	}
	if c.PhaseWindow == 0 {
		c.PhaseWindow = 3 * sim.Second
	}
	if c.WriteBiasIn == 0 {
		c.WriteBiasIn = 6
	}
	if c.WriteBiasOut == 0 {
		c.WriteBiasOut = 0.15
	}
	if c.PhaseThinkFactor == 0 {
		c.PhaseThinkFactor = 0.4
	}
	if c.ShedBackoff == 0 {
		c.ShedBackoff = 2 * sim.Second
	}
}

// inWindow reports whether now falls inside a write-surge window.
func (c *ClientConfig) inWindow(now sim.Time) bool {
	return c.Phases && now%c.PhasePeriod < c.PhaseWindow
}

// writeBias returns the current phase bias (1 when phases are disabled).
func (c *ClientConfig) writeBias(now sim.Time) float64 {
	if !c.Phases {
		return 1
	}
	if c.inWindow(now) {
		return c.WriteBiasIn
	}
	return c.WriteBiasOut
}

// thinkMean returns the mean think time at now (surge windows also raise
// the request rate: users act faster around auction closings).
func (c *ClientConfig) thinkMean(now sim.Time) sim.Time {
	if c.inWindow(now) {
		return c.ThinkTime.Scale(c.PhaseThinkFactor)
	}
	return c.ThinkTime
}

// session is one emulated user's state.
type session struct {
	id      int
	seq     int
	current RequestType
	started sim.Time
	pending bool
}

// Client emulates the RUBiS client workload generator: a fixed population
// of user sessions, each issuing a request, waiting for the response,
// thinking, and transitioning to the next request type. Completed sessions
// are immediately replaced, keeping the offered concurrency constant.
type Client struct {
	sim *sim.Simulator
	cfg ClientConfig
	x   *ixp.IXP
	rng *sim.Rand

	metrics  *Metrics
	sessions map[int]*session
	nextID   int
	pktID    uint64
	issued   uint64
	stopped  bool
}

// NewClient builds a client injecting at IXP x and registers itself as the
// wire's egress consumer. Call Start to begin issuing requests.
func NewClient(s *sim.Simulator, cfg ClientConfig, x *ixp.IXP) *Client {
	cfg.applyDefaults()
	c := &Client{
		sim:      s,
		cfg:      cfg,
		x:        x,
		rng:      s.Rand().Fork(),
		metrics:  NewMetrics(cfg.Warmup),
		sessions: make(map[int]*session),
	}
	x.ConnectWire(c.onResponse)
	return c
}

// Metrics returns the client-side measurements.
func (c *Client) Metrics() *Metrics { return c.metrics }

// Issued returns the number of requests sent.
func (c *Client) Issued() uint64 { return c.issued }

// ActiveSessions returns the number of sessions currently in flight.
func (c *Client) ActiveSessions() int { return len(c.sessions) }

// Start launches the session population, staggered over the first second to
// avoid a synchronized thundering herd.
func (c *Client) Start() {
	for i := 0; i < c.cfg.Sessions; i++ {
		delay := sim.Time(c.rng.Uniform(0, float64(sim.Second)))
		c.sim.After(delay, c.startSession)
	}
}

// Stop ceases issuing new requests (in-flight responses still drain).
func (c *Client) Stop() { c.stopped = true }

func (c *Client) startSession() {
	if c.stopped {
		return
	}
	s := &session{
		id:      c.nextID,
		current: c.cfg.Mix.First(c.rng),
		started: c.sim.Now(),
	}
	c.nextID++
	c.sessions[s.id] = s
	c.send(s)
}

// send issues the session's current request into the IXP.
func (c *Client) send(s *session) {
	s.pending = true
	c.pktID++
	c.issued++
	req := &Request{Type: s.current, Session: s.id, Seq: s.seq, SentAt: c.sim.Now()}
	prof := DefaultCatalog()[s.current]
	c.x.Receive(&netsim.Packet{
		ID:      c.pktID,
		Size:    prof.ReqBytes,
		DstVM:   c.cfg.WebVM,
		SrcVM:   -1,
		Class:   netsim.Class(s.current.String()),
		Payload: req,
		Created: c.sim.Now(),
	})
	if c.cfg.Timeout > 0 {
		seq := s.seq
		c.sim.After(c.cfg.Timeout, func() { c.abandon(s, seq, req.SentAt) })
	}
}

// abandon gives up on a page still unanswered at the timeout: the session
// moves on after a backoff, and the eventual response (the server is still
// working on it) will be discarded as stale.
func (c *Client) abandon(s *session, seq int, sentAt sim.Time) {
	if c.stopped {
		return
	}
	if cur, ok := c.sessions[s.id]; !ok || cur != s || !s.pending || s.seq != seq {
		return // answered (or shed) in time
	}
	s.pending = false
	if sentAt >= c.cfg.Warmup {
		c.metrics.RecordAbandon()
	}
	c.advance(s, true)
}

// onResponse consumes response packets leaving the IXP toward the wire.
// Only the final MTU segment of a response carries the request payload;
// earlier segments are plain data.
func (c *Client) onResponse(p *netsim.Packet) {
	req, ok := p.Payload.(*Request)
	if !ok {
		return
	}
	s, ok := c.sessions[req.Session]
	if !ok || !s.pending || s.seq != req.Seq {
		return // stale response from a session replaced after Stop/timeout
	}
	s.pending = false
	if req.Shed {
		// Admission-control rejection: the session saw a fast error page.
		// It still advances (real users give up on the page, not the
		// site), but nothing is added to the served-latency distributions.
		if req.SentAt >= c.cfg.Warmup {
			c.metrics.RecordShed()
		}
	} else if req.SentAt >= c.cfg.Warmup {
		c.metrics.RecordResponse(req.Type, c.sim.Now()-req.SentAt)
	}
	c.advance(s, req.Shed)
}

// advance moves the session to its next page (or replaces a completed
// session). backoff selects the ShedBackoff pause instead of normal think
// time — used after sheds and abandonments.
func (c *Client) advance(s *session, backoff bool) {
	s.seq++
	if s.seq >= c.cfg.RequestsPerSession {
		if c.sim.Now() >= c.cfg.Warmup {
			c.metrics.RecordSession(c.sim.Now() - s.started)
		}
		delete(c.sessions, s.id)
		c.startSession()
		return
	}
	s.current = c.cfg.Mix.NextBiased(c.rng, s.current, c.cfg.writeBias(c.sim.Now()))
	mean := c.cfg.thinkMean(c.sim.Now())
	if backoff {
		mean = c.cfg.ShedBackoff
	}
	think := c.rng.ExpTime(mean)
	c.sim.After(think, func() {
		if !c.stopped {
			c.send(s)
		}
	})
}
