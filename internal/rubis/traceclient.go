package rubis

import (
	"fmt"
	"sort"

	"repro/internal/ixp"
	"repro/internal/netsim"
	"repro/internal/scenario"
	"repro/internal/sim"
)

// TraceReq is one resolved trace request: a scenario.Req whose class has
// been mapped onto a concrete RUBiS request type and whose session id has
// been densified. Seq numbers requests within a session in arrival order,
// mirroring the closed-loop client's (session, seq) addressing so the
// server and shed paths need no changes.
type TraceReq struct {
	T       sim.Time
	Type    RequestType
	Session int
	Seq     int
	Size    int // request payload bytes; 0 selects the catalog default
}

// ResolveTrace maps a workload trace onto the RUBiS catalog. Classes
// resolve through overrides first, then scenario.DefaultClassMap, then
// directly as RUBiS type names (so recorded RUBiS traces replay without
// a map); an unresolvable class is a diagnosable error, not a panic.
// Arbitrary int64 session ids are renumbered densely in order of first
// appearance.
func ResolveTrace(tr *scenario.Trace, overrides map[string]string) ([]TraceReq, error) {
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	defaults := scenario.DefaultClassMap()
	byName := make(map[string]RequestType, NumRequestTypes)
	for _, rt := range AllRequestTypes() {
		byName[rt.String()] = rt
	}
	resolve := func(class string) (RequestType, error) {
		name := class
		if mapped, ok := overrides[class]; ok {
			name = mapped
		} else if mapped, ok := defaults[class]; ok {
			name = mapped
		}
		rt, ok := byName[name]
		if !ok {
			if name != class {
				return 0, fmt.Errorf("rubis: request class %q maps to %q, which is not a RUBiS request type", class, name)
			}
			return 0, fmt.Errorf("rubis: unknown request class %q (not in the class map and not a RUBiS request type)", class)
		}
		return rt, nil
	}

	types := make(map[string]RequestType)
	dense := make(map[int64]int)
	seq := make(map[int]int)
	out := make([]TraceReq, 0, len(tr.Reqs))
	for _, r := range tr.Reqs {
		rt, ok := types[r.Class]
		if !ok {
			var err error
			if rt, err = resolve(r.Class); err != nil {
				return nil, err
			}
			types[r.Class] = rt
		}
		sess, ok := dense[r.Session]
		if !ok {
			sess = len(dense)
			dense[r.Session] = sess
		}
		out = append(out, TraceReq{
			T:       r.T,
			Type:    rt,
			Session: sess,
			Seq:     seq[sess],
			Size:    int(r.Size),
		})
		seq[sess]++
	}
	return out, nil
}

// ScaleTraceTimes compresses (factor > 1) or stretches (factor < 1) a
// resolved trace's arrival times in place — the open-loop analogue of the
// closed-loop client's LoadFactor session scaling. Relative order is
// preserved exactly.
func ScaleTraceTimes(reqs []TraceReq, factor float64) {
	if factor <= 0 || factor == 1 {
		return
	}
	for i := range reqs {
		reqs[i].T = sim.Time(float64(reqs[i].T) / factor)
	}
}

// TraceClientConfig shapes the trace-driven client.
type TraceClientConfig struct {
	Reqs   []TraceReq // resolved trace, nondecreasing T
	WebVM  int        // destination VM for request traffic
	Warmup sim.Time   // responses to requests sent before this are not recorded

	// Timeout, when positive, discards responses that arrive later than
	// this after the send (the open-loop analogue of the closed-loop
	// client's page abandonment: the server's work is wasted).
	Timeout sim.Time
}

// pendKey addresses one in-flight trace request.
type pendKey struct {
	session int
	seq     int
}

// TraceClient replays a recorded or generated workload trace into the
// IXP: every request is injected at its trace arrival time, open loop —
// unlike the closed-loop Client, arrivals do not slow down when the
// platform does, which is exactly what makes trace-driven overload
// reproducible. Responses are matched back by (session, seq); a session
// completes when its last request has been answered, shed, or timed out.
type TraceClient struct {
	sim *sim.Simulator
	cfg TraceClientConfig
	x   *ixp.IXP

	metrics *Metrics
	pending map[pendKey]*Request
	// remaining counts each session's outstanding requests; started is
	// its first send time, for session-duration accounting.
	remaining map[int]int
	started   map[int]sim.Time
	next      int // cursor into cfg.Reqs
	pktID     uint64
	issued    uint64
}

// NewTraceClient builds a trace-driven client injecting at IXP x and
// registers itself as the wire's egress consumer. The trace must be
// sorted by arrival time (ResolveTrace preserves trace order, which the
// format guarantees nondecreasing). Call Start to begin the replay.
func NewTraceClient(s *sim.Simulator, cfg TraceClientConfig, x *ixp.IXP) *TraceClient {
	if !sort.SliceIsSorted(cfg.Reqs, func(i, j int) bool { return cfg.Reqs[i].T < cfg.Reqs[j].T }) {
		panic("rubis: trace requests are not sorted by arrival time")
	}
	c := &TraceClient{
		sim:       s,
		cfg:       cfg,
		x:         x,
		metrics:   NewMetrics(cfg.Warmup),
		pending:   make(map[pendKey]*Request),
		remaining: make(map[int]int),
		started:   make(map[int]sim.Time),
	}
	for _, r := range cfg.Reqs {
		c.remaining[r.Session]++
	}
	x.ConnectWire(c.onResponse)
	return c
}

// Metrics returns the client-side measurements.
func (c *TraceClient) Metrics() *Metrics { return c.metrics }

// Issued returns the number of requests sent so far.
func (c *TraceClient) Issued() uint64 { return c.issued }

// Outstanding returns the number of requests awaiting a response.
func (c *TraceClient) Outstanding() int { return len(c.pending) }

// Start schedules the replay. A single walker steps through the sorted
// trace, so the event heap holds at most one arrival at a time no matter
// how long the trace is.
func (c *TraceClient) Start() {
	if len(c.cfg.Reqs) > 0 {
		c.sim.At(c.cfg.Reqs[0].T, c.step)
	}
}

// step injects every request due now and schedules the next arrival.
func (c *TraceClient) step() {
	now := c.sim.Now()
	for c.next < len(c.cfg.Reqs) && c.cfg.Reqs[c.next].T <= now {
		c.send(c.cfg.Reqs[c.next])
		c.next++
	}
	if c.next < len(c.cfg.Reqs) {
		c.sim.At(c.cfg.Reqs[c.next].T, c.step)
	}
}

// send injects one trace request into the IXP.
func (c *TraceClient) send(r TraceReq) {
	c.pktID++
	c.issued++
	now := c.sim.Now()
	if _, ok := c.started[r.Session]; !ok {
		c.started[r.Session] = now
	}
	req := &Request{Type: r.Type, Session: r.Session, Seq: r.Seq, SentAt: now}
	key := pendKey{session: r.Session, seq: r.Seq}
	c.pending[key] = req
	size := r.Size
	if size == 0 {
		size = DefaultCatalog()[r.Type].ReqBytes
	}
	c.x.Receive(&netsim.Packet{
		ID:      c.pktID,
		Size:    size,
		DstVM:   c.cfg.WebVM,
		SrcVM:   -1,
		Class:   netsim.Class(r.Type.String()),
		Payload: req,
		Created: now,
	})
	if c.cfg.Timeout > 0 {
		c.sim.After(c.cfg.Timeout, func() { c.abandon(key) })
	}
}

// abandon gives up on a request still unanswered at the timeout; the
// eventual response is discarded as stale.
func (c *TraceClient) abandon(key pendKey) {
	req, ok := c.pending[key]
	if !ok {
		return // answered (or shed) in time
	}
	delete(c.pending, key)
	if req.SentAt >= c.cfg.Warmup {
		c.metrics.RecordAbandon()
	}
	c.settle(key.session)
}

// onResponse consumes response packets leaving the IXP toward the wire.
// Only the final MTU segment of a response carries the request payload;
// earlier segments are plain data.
func (c *TraceClient) onResponse(p *netsim.Packet) {
	req, ok := p.Payload.(*Request)
	if !ok {
		return
	}
	key := pendKey{session: req.Session, seq: req.Seq}
	if cur, ok := c.pending[key]; !ok || cur != req {
		return // stale response to an abandoned request
	}
	delete(c.pending, key)
	if req.Shed {
		if req.SentAt >= c.cfg.Warmup {
			c.metrics.RecordShed()
		}
	} else if req.SentAt >= c.cfg.Warmup {
		c.metrics.RecordResponse(req.Type, c.sim.Now()-req.SentAt)
	}
	c.settle(key.session)
}

// settle retires one request of a session and records the session's
// completion when its last request settles.
func (c *TraceClient) settle(session int) {
	c.remaining[session]--
	if c.remaining[session] > 0 {
		return
	}
	delete(c.remaining, session)
	if start, ok := c.started[session]; ok {
		delete(c.started, session)
		if start >= c.cfg.Warmup {
			c.metrics.RecordSession(c.sim.Now() - start)
		}
	}
}
