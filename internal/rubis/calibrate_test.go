package rubis

import (
	"testing"

	"repro/internal/sim"
)

// TestCalibrationReport prints base-vs-coordinated numbers for manual
// calibration against the paper's tables. Run with -v to inspect.
func TestCalibrationReport(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration report skipped in -short mode")
	}
	run := func(coord bool) *Result {
		return RunExperiment(ExperimentConfig{
			Coordinated: coord,
			Duration:    130 * sim.Second,
		})
	}
	base := run(false)
	coord := run(true)
	t.Logf("base:  tput=%.1f req/s eff=%.2f util web=%.0f app=%.0f db=%.0f dom0=%.0f sessions=%d avgSess=%.1fs",
		base.Throughput, base.Efficiency, base.WebUtil, base.AppUtil, base.DBUtil, base.Dom0Util,
		base.Metrics.SessionsCompleted(), base.Metrics.AvgSessionTime())
	t.Logf("coord: tput=%.1f req/s eff=%.2f util web=%.0f app=%.0f db=%.0f dom0=%.0f sessions=%d avgSess=%.1fs tunes=%d weights=%v",
		coord.Throughput, coord.Efficiency, coord.WebUtil, coord.AppUtil, coord.DBUtil, coord.Dom0Util,
		coord.Metrics.SessionsCompleted(), coord.Metrics.AvgSessionTime(), coord.TunesSent, coord.FinalWeights)
	for _, rt := range AllRequestTypes() {
		b, c := base.Metrics.TypeSummary(rt), coord.Metrics.TypeSummary(rt)
		t.Logf("%-26s base n=%-4d avg=%6.0f max=%6.0f | coord n=%-4d avg=%6.0f max=%6.0f",
			rt, b.Count(), b.Mean(), b.Max(), c.Count(), c.Mean(), c.Max())
	}
}
