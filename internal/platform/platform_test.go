package platform

import (
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/trace"
)

func TestNewWiresBothIslands(t *testing.T) {
	p := New(Config{})
	if p.Sim == nil || p.HV == nil || p.IXP == nil || p.Host == nil || p.Controller == nil {
		t.Fatal("platform incompletely assembled")
	}
	if p.Dom0.ID() != 0 || p.Dom0.Name() != "Dom0" {
		t.Fatalf("Dom0 = %d %q", p.Dom0.ID(), p.Dom0.Name())
	}
	islands := p.Controller.Islands()
	if len(islands) != 2 || islands[0] != IXPIsland || islands[1] != X86Island {
		t.Fatalf("islands = %v", islands)
	}
	if got := p.Config().CoordLatency; got != 150*sim.Microsecond {
		t.Fatalf("default coord latency = %v", got)
	}
	if p.Config().MinGuestWeight != 64 || p.Config().MaxGuestWeight != 1024 {
		t.Fatalf("default clamps = %d..%d", p.Config().MinGuestWeight, p.Config().MaxGuestWeight)
	}
}

func TestAddGuestRegistersEverywhere(t *testing.T) {
	p := New(Config{})
	d := p.AddGuest("web", 256)
	if d.ID() != 1 {
		t.Fatalf("guest ID = %d", d.ID())
	}
	if _, ok := p.Controller.Entity(d.ID()); !ok {
		t.Fatal("guest not registered with controller")
	}
	if p.IXP.Flow(d.ID()) == nil {
		t.Fatal("guest has no IXP flow queue")
	}
	got, err := p.GuestByName("web")
	if err != nil || got != d {
		t.Fatalf("GuestByName = %v, %v", got, err)
	}
	if _, err := p.GuestByName("nope"); err == nil {
		t.Fatal("GuestByName found ghost")
	}
	if len(p.Guests()) != 1 {
		t.Fatalf("Guests() = %v", p.Guests())
	}
}

func TestAddLocalGuestSkipsIXP(t *testing.T) {
	p := New(Config{})
	d := p.AddLocalGuest("disk", 256)
	if _, ok := p.Controller.Entity(d.ID()); !ok {
		t.Fatal("local guest not registered with controller")
	}
	if p.IXP.Flow(d.ID()) != nil {
		t.Fatal("local guest should have no IXP flow")
	}
}

func TestCoordinationRoundTripThroughMailbox(t *testing.T) {
	p := New(Config{})
	d := p.AddGuest("vm", 256)
	// IXP-side agent tunes the x86 VM's weight over the mailbox.
	if !p.IXPAgent.SendTune(X86Island, d.ID(), +64) {
		t.Fatal("tune rejected")
	}
	p.Sim.RunUntil(sim.Millisecond)
	if d.Weight() != 320 {
		t.Fatalf("weight = %d after tune, want 320", d.Weight())
	}
	// And the reverse direction: x86 agent tunes the IXP flow's threads.
	before := p.IXP.FlowThreads(d.ID())
	p.X86Agent.SendTune(IXPIsland, d.ID(), +2)
	p.Sim.RunUntil(2 * sim.Millisecond)
	if got := p.IXP.FlowThreads(d.ID()); got != before+2 {
		t.Fatalf("flow threads = %d, want %d", got, before+2)
	}
}

func TestCoordinationLatencyHonored(t *testing.T) {
	p := New(Config{CoordLatency: 5 * sim.Millisecond})
	d := p.AddGuest("vm", 256)
	p.IXPAgent.SendTune(X86Island, d.ID(), +64)
	p.Sim.RunUntil(4 * sim.Millisecond)
	if d.Weight() != 256 {
		t.Fatal("tune applied before mailbox latency elapsed")
	}
	p.Sim.RunUntil(6 * sim.Millisecond)
	if d.Weight() != 320 {
		t.Fatalf("weight = %d after latency, want 320", d.Weight())
	}
}

func TestTuneRateLimitOption(t *testing.T) {
	p := New(Config{TuneRateLimit: 10 * sim.Millisecond})
	d := p.AddGuest("vm", 256)
	p.IXPAgent.SendTune(X86Island, d.ID(), +64)
	p.IXPAgent.SendTune(X86Island, d.ID(), +64) // dropped
	p.Sim.RunUntil(sim.Millisecond)
	if got := p.IXPAgent.Stats().RateLimitDropped; got != 1 {
		t.Fatalf("RateLimitDropped = %d", got)
	}
	if d.Weight() != 320 {
		t.Fatalf("weight = %d, want a single tune applied", d.Weight())
	}
}

func TestTotalGuestUtilization(t *testing.T) {
	p := New(Config{})
	a := p.AddGuest("a", 256)
	var next func()
	next = func() { a.SubmitFunc(5*sim.Millisecond, "hog", next) }
	next()
	p.Sim.RunUntil(2 * sim.Second)
	u := p.TotalGuestUtilization(0)
	if u < 90 {
		t.Fatalf("TotalGuestUtilization = %.1f, want ~100", u)
	}
}

func TestWeightClampsRespectedByTunes(t *testing.T) {
	p := New(Config{MinGuestWeight: 100, MaxGuestWeight: 400})
	d := p.AddGuest("vm", 256)
	p.IXPAgent.SendTune(X86Island, d.ID(), +10000)
	p.Sim.RunUntil(sim.Millisecond)
	if d.Weight() != 400 {
		t.Fatalf("weight = %d, want clamp 400", d.Weight())
	}
	p.IXPAgent.SendTune(X86Island, d.ID(), -10000)
	p.Sim.RunUntil(2 * sim.Millisecond)
	if d.Weight() != 100 {
		t.Fatalf("weight = %d, want clamp 100", d.Weight())
	}
}

func TestUnknownEntityTuneIsDropped(t *testing.T) {
	p := New(Config{})
	p.IXPAgent.SendTune(X86Island, 42, +64)
	p.Sim.RunUntil(sim.Millisecond)
	if got := p.Controller.Unroutable(); got != 1 {
		t.Fatalf("Unroutable = %d", got)
	}
}

func TestPlatformTracing(t *testing.T) {
	p := New(Config{Trace: trace.CatCoord | trace.CatSched, TraceCapacity: 1024})
	d := p.AddGuest("vm", 256)
	d.SubmitFunc(5*sim.Millisecond, "work", nil)
	p.IXPAgent.SendTune(X86Island, d.ID(), +64)
	p.Sim.RunUntil(10 * sim.Millisecond)
	if p.Tracer == nil {
		t.Fatal("tracer not created")
	}
	if p.Tracer.Count() == 0 {
		t.Fatal("no events recorded")
	}
	dump := p.Tracer.Dump(trace.CatAll)
	for _, want := range []string{"send tune", "apply tune", "run vm/0"} {
		if !strings.Contains(dump, want) {
			t.Fatalf("trace missing %q:\n%s", want, dump)
		}
	}
	// Tracing off by default.
	p2 := New(Config{})
	if p2.Tracer != nil {
		t.Fatal("tracer created without Trace config")
	}
}
