package platform

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/flight"
	"repro/internal/ixp"
	"repro/internal/sim"
	"repro/internal/xen"
)

// DVFS island names and their synthetic entity IDs. An operating point is
// a property of a whole island, not of any guest, so each DVFS actuator is
// addressed through one island-wide entity well clear of the domain-ID
// space guests occupy.
const (
	X86DVFSIsland = "x86-dvfs"
	IXPDVFSIsland = "ixp-dvfs"

	EnergyEntityX86 = 1000
	EnergyEntityIXP = 1001
)

// EnergyConfig arms the energy subsystem: per-island DVFS state machines,
// the always-on energy meter, and the configured governor.
type EnergyConfig struct {
	// Governor selects the policy: energy.ModeOff (default) leaves both
	// islands at their top operating points, energy.ModeOndemand runs one
	// latency-blind utilization governor per island (the uncoordinated
	// ablation), energy.ModeCoordinated builds the QoS-constrained
	// cross-island governor (the application layer drives its Step with a
	// windowed p95).
	Governor string

	// QoSTargetP95 is the coordinated governor's end-to-end latency SLO
	// (default 250ms).
	QoSTargetP95 sim.Time

	// Headroom scales QoSTargetP95 into the coordinated governor's
	// de-escalation threshold (default 0.6).
	Headroom float64

	// Period is the governor control window (default 500ms): the
	// ondemand governors' re-evaluation tick and the coordinated
	// governor's p95 window.
	Period sim.Time

	// MeterPeriod is the energy-integration window (default 100ms).
	MeterPeriod sim.Time

	// X86Table and IXPTable override the default operating-point tables.
	// The top point of each table must match the island's hardware
	// maximum (the state the island boots in).
	X86Table []energy.OperatingPoint
	IXPTable []energy.OperatingPoint
}

func (c *EnergyConfig) applyDefaults() {
	if c.Governor == "" {
		c.Governor = energy.ModeOff
	}
	if c.QoSTargetP95 == 0 {
		c.QoSTargetP95 = 2 * sim.Second
	}
	if c.Period == 0 {
		c.Period = 500 * sim.Millisecond
	}
	if c.MeterPeriod == 0 {
		c.MeterPeriod = 100 * sim.Millisecond
	}
	if c.X86Table == nil {
		c.X86Table = energy.DefaultX86Table()
	}
	if c.IXPTable == nil {
		c.IXPTable = energy.DefaultIXPTable()
	}
}

// x86UtilFn returns a delta-busy utilization sensor over the window since
// its previous call. Each consumer needs its own instance: the window
// state is per-closure.
func x86UtilFn(s *sim.Simulator, hv *xen.Hypervisor) func() float64 {
	var lastAt, lastBusy sim.Time
	return func() float64 {
		now := s.Now()
		var busy sim.Time
		for _, d := range hv.Domains() {
			hv.TotalUtilization(0, d) // fold in-progress runs into the meter
			busy += d.Meter().Busy()
		}
		window := now - lastAt
		if window <= 0 {
			return 0
		}
		delta := busy - lastBusy
		lastAt, lastBusy = now, busy
		util := float64(delta) / float64(window) / float64(len(hv.PCPUs()))
		if util > 1 {
			util = 1
		}
		return util
	}
}

// ixpUtilFn returns a microengine-load proxy over the window since its
// previous call: per-packet microengine work (at the current pool gating)
// for the packets that crossed the island, divided by the thread-time
// available. Like x86UtilFn, each consumer needs its own instance.
func ixpUtilFn(s *sim.Simulator, x *ixp.IXP) func() float64 {
	var lastAt sim.Time
	var lastPkts uint64
	return func() float64 {
		now := s.Now()
		pkts := x.RxSeen() + x.TxSeen()
		window := now - lastAt
		dp := pkts - lastPkts
		lastAt, lastPkts = now, pkts
		threads := x.ThreadsAllocated()
		if window <= 0 || threads == 0 {
			return 0
		}
		cfg := x.Config()
		per := cfg.ClassifyCost + cfg.DequeueCost
		work := sim.Time(dp) * per * sim.Time(ixp.NumMEPools) / sim.Time(x.ActivePools())
		util := float64(work) / float64(window) / float64(threads)
		if util > 1 {
			util = 1
		}
		return util
	}
}

// enableEnergy wires the energy subsystem: DVFS state machines over the
// island actuation sites, their coordination-plane agents and entities,
// the energy meter, and the configured governor. Runs without an
// EnergyConfig are bit-for-bit identical to the pre-energy platform —
// nothing here is constructed.
func (p *Platform) enableEnergy(cfg EnergyConfig) {
	cfg.applyDefaults()
	p.EnergyCfg = &cfg
	s := p.Sim

	// Commit each table's top point as the island's boot state: override
	// tables may top out below the hardware maximum (capping the island's
	// speed for the whole run), and the machines assume they start at
	// their top index.
	if top := cfg.X86Table[len(cfg.X86Table)-1].Level; top != p.Ctl.FrequencyMHz() {
		if err := p.Ctl.SetFrequencyMHz(top); err != nil {
			panic(fmt.Sprintf("platform: x86 energy table top %d MHz: %v", top, err))
		}
	}
	if top := cfg.IXPTable[len(cfg.IXPTable)-1].Level; top != p.IXP.ActivePools() {
		if err := p.IXP.SetActivePools(top); err != nil {
			panic(fmt.Sprintf("platform: IXP energy table top %d pools: %v", top, err))
		}
	}

	x86m, err := energy.NewMachine(X86Island, s, cfg.X86Table, len(cfg.X86Table)-1,
		func(pt energy.OperatingPoint) error { return p.Ctl.SetFrequencyMHz(pt.Level) })
	if err != nil {
		panic(fmt.Sprintf("platform: x86 energy table: %v", err))
	}
	ixpm, err := energy.NewMachine(IXPIsland, s, cfg.IXPTable, len(cfg.IXPTable)-1,
		func(pt energy.OperatingPoint) error { return p.IXP.SetActivePools(pt.Level) })
	if err != nil {
		panic(fmt.Sprintf("platform: IXP energy table: %v", err))
	}
	p.X86DVFS, p.IXPDVFS = x86m, ixpm

	// Both DVFS agents are management-interface endpoints co-located with
	// the controller in Dom0 (the same placement as the power-cap
	// actuator): the Tune path still crosses the controller, so routing
	// counters, epochs, and flight sends all see DVFS traffic.
	route := p.Controller.Route
	registerIsland := p.Controller.RegisterIsland
	registerEntity := p.Controller.RegisterEntity
	if p.Group != nil {
		route = p.Group.Route
		registerIsland = p.Group.RegisterIsland
		registerEntity = p.Group.RegisterEntity
	}
	x86Agent := core.NewAgent(X86DVFSIsland, nil, route, core.NewDVFSActuator(x86m), core.WithTracer(p.Tracer))
	x86Agent.SetFlightRecorder(s, p.cfg.Flight)
	ixpAgent := core.NewAgent(IXPDVFSIsland, nil, route, core.NewDVFSActuator(ixpm), core.WithTracer(p.Tracer))
	ixpAgent.SetFlightRecorder(s, p.cfg.Flight)
	for _, reg := range []struct {
		island core.IslandHandle
		entity core.Entity
	}{
		{core.IslandHandle{Name: X86DVFSIsland, Local: x86Agent.Deliver},
			core.Entity{ID: EnergyEntityX86, Name: X86DVFSIsland, Home: X86DVFSIsland}},
		{core.IslandHandle{Name: IXPDVFSIsland, Local: ixpAgent.Deliver},
			core.Entity{ID: EnergyEntityIXP, Name: IXPDVFSIsland, Home: IXPDVFSIsland}},
	} {
		if err := registerIsland(reg.island); err != nil {
			panic(fmt.Sprintf("platform: registering %s island: %v", reg.island.Name, err))
		}
		if err := registerEntity(reg.entity); err != nil {
			panic(fmt.Sprintf("platform: registering %s entity: %v", reg.entity.Name, err))
		}
	}

	// The meter integrates each island's modeled power over the committed
	// operating points: the x86 dynamic term follows delta-busy
	// utilization, the IXP term follows the thread allocation (per-thread
	// power dominates a network processor's dynamic draw).
	meterUtil := x86UtilFn(s, p.HV)
	p.EnergyMeter = energy.NewMeter(s, cfg.MeterPeriod, []energy.IslandSource{
		{Name: X86Island, Watts: func() float64 { return x86m.Current().Watts(meterUtil()) }},
		{Name: IXPIsland, Watts: func() float64 {
			return ixpm.Current().StaticW + energy.IXPThreadWatts(p.IXP.ThreadsAllocated())
		}},
	})

	switch cfg.Governor {
	case energy.ModeOff:
		// Both islands stay at their top points.
	case energy.ModeOndemand:
		energy.NewOndemand(s, x86m, cfg.Period, x86UtilFn(s, p.HV))
		energy.NewOndemand(s, ixpm, cfg.Period, ixpUtilFn(s, p.IXP))
	case energy.ModeCoordinated:
		p.EnergyGov = energy.NewCoordinated(s, energy.CoordinatedConfig{
			Target:     cfg.QoSTargetP95,
			Headroom:   cfg.Headroom,
			X86:        x86m,
			IXP:        ixpm,
			X86Util:    x86UtilFn(s, p.HV),
			IXPUtil:    ixpUtilFn(s, p.IXP),
			TuneX86:    func(delta int) { p.X86Agent.SendTune(X86DVFSIsland, EnergyEntityX86, delta) },
			TuneIXP:    func(delta int) { p.X86Agent.SendTune(IXPDVFSIsland, EnergyEntityIXP, delta) },
			TriggerX86: func() { p.X86Agent.SendTrigger(X86DVFSIsland, EnergyEntityX86) },
			Recorder:   p.cfg.Flight,
		})
	default:
		panic(fmt.Sprintf("platform: unknown energy governor %q", cfg.Governor))
	}
	if p.cfg.Flight != nil && cfg.Governor != energy.ModeOff {
		target := int64(0)
		if cfg.Governor == energy.ModeCoordinated {
			target = int64(cfg.QoSTargetP95)
		}
		p.cfg.Flight.Record(flight.Event{
			T: s.Now(), Cat: flight.CatEnergy, Code: flight.EnergyGovernor,
			Label: cfg.Governor, Entity: -1, Arg: target,
		})
	}
}
