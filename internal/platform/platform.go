// Package platform assembles the paper's prototype: a two-island
// heterogeneous system joining an x86 host (Xen hypervisor, credit
// scheduler, Dom0 + guest VMs) and an IXP2850 network processor over PCIe,
// with the coordination layer registered between them.
//
// Figure 3 of the paper is the wiring diagram this package implements:
// external traffic enters the IXP, is classified into per-VM flow queues,
// crosses PCIe into the host messaging driver, traverses the Dom0 bridge,
// and reaches guest VMs; coordination messages travel the PCI
// configuration-space mailbox between the IXP's XScale agent and the
// global controller in Dom0.
package platform

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/ixp"
	"repro/internal/netsim"
	"repro/internal/pcie"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/xen"
)

// Island names used throughout the prototype.
const (
	X86Island = "x86"
	IXPIsland = "ixp"
)

// Config parameterizes the testbed. Zero values take prototype defaults.
type Config struct {
	Seed         int64       // simulation seed (default 1)
	Xen          xen.Options // x86 island configuration
	IXP          ixp.Config  // IXP island configuration
	HostNet      netsim.Config
	PCIe         pcie.Config // bulk DMA channel parameters
	CoordLatency sim.Time    // one-way coordination mailbox latency (default 150us)
	Dom0Weight   int         // Dom0 credit weight (default 256)

	// TuneRateLimit, when positive, rate-limits outbound coordination
	// messages per (kind, entity) on the IXP agent.
	TuneRateLimit sim.Time

	// MinGuestWeight and MaxGuestWeight clamp Tune-driven weight changes
	// (defaults 64 and 1024).
	MinGuestWeight, MaxGuestWeight int

	// Trace, when non-zero, records structured events of the given
	// categories into Platform.Tracer (ring of TraceCapacity events,
	// default 4096).
	Trace         trace.Category
	TraceCapacity int

	// CoordLossRate injects coordination-message loss on the mailbox
	// (0 = lossless). Policies must tolerate it.
	CoordLossRate float64
}

func (c *Config) applyDefaults() {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.CoordLatency == 0 {
		c.CoordLatency = 150 * sim.Microsecond
	}
	if c.Dom0Weight == 0 {
		c.Dom0Weight = 256
	}
	if c.PCIe == (pcie.Config{}) {
		c.PCIe = pcie.DefaultConfig()
	}
	if c.MinGuestWeight == 0 {
		c.MinGuestWeight = 64
	}
	if c.MaxGuestWeight == 0 {
		c.MaxGuestWeight = 1024
	}
}

// Platform is the assembled testbed.
type Platform struct {
	Sim  *sim.Simulator
	HV   *xen.Hypervisor
	Dom0 *xen.Domain
	Ctl  *xen.Ctl
	IXP  *ixp.IXP
	Host *netsim.HostStack

	Mailbox    *pcie.Mailbox
	Controller *core.Controller
	X86Agent   *core.Agent
	IXPAgent   *core.Agent
	X86Act     *core.X86Actuator
	Tracer     *trace.Tracer

	cfg    Config
	guests []*xen.Domain
}

// New assembles the two-island prototype and starts the hypervisor.
func New(cfg Config) *Platform {
	cfg.applyDefaults()
	s := sim.New(cfg.Seed)

	var tracer *trace.Tracer
	if cfg.Trace != 0 {
		tracer = trace.New(s, cfg.Trace, cfg.TraceCapacity)
	}

	hv := xen.New(s, cfg.Xen)
	hv.SetTracer(tracer)
	dom0 := hv.CreateDomain("Dom0", cfg.Dom0Weight, 1)
	ctl := xen.NewCtl(hv)

	// Bulk data path: one DMA channel per direction.
	ixpToHost := pcie.NewChannel(s, "ixp->host", cfg.PCIe)
	hostToIXP := pcie.NewChannel(s, "host->ixp", cfg.PCIe)

	host := netsim.NewHostStack(s, dom0, hostToIXP, cfg.HostNet)
	x := ixp.New(s, cfg.IXP, ixpToHost, host.DeliverFromIXP)
	x.SetTracer(tracer)
	host.ConnectIXPTransmit(x.TransmitFromHost)
	x.ConnectHostGate(host.RingFull)

	// Coordination plane: mailbox in PCI config space, controller in Dom0.
	mb := pcie.NewMailbox(s, cfg.CoordLatency)
	if cfg.CoordLossRate > 0 {
		mb.SetLossRate(cfg.CoordLossRate, s.Rand().Fork())
	}
	ctrl := core.NewController()

	x86Act := core.NewX86Actuator(ctl)
	x86Act.MinWeight = cfg.MinGuestWeight
	x86Act.MaxWeight = cfg.MaxGuestWeight
	x86Agent := core.NewAgent(X86Island, nil, ctrl.Route, x86Act, core.WithTracer(tracer))
	if err := ctrl.RegisterIsland(core.IslandHandle{Name: X86Island, Local: x86Agent.Deliver}); err != nil {
		panic(fmt.Sprintf("platform: registering x86 island: %v", err))
	}

	uplink := core.NewDeviceUplink(mb)
	uplink.SetReceiver(ctrl.Route)
	downlink := core.NewHostDownlink(mb)
	var ixpOpts []core.AgentOption
	if cfg.TuneRateLimit > 0 {
		ixpOpts = append(ixpOpts, core.WithRateLimit(s, cfg.TuneRateLimit))
	}
	ixpOpts = append(ixpOpts, core.WithTracer(tracer))
	ixpAgent := core.NewAgent(IXPIsland, uplink, nil, core.NewIXPActuator(s, x), ixpOpts...)
	downlink.SetReceiver(ixpAgent.Deliver)
	if err := ctrl.RegisterIsland(core.IslandHandle{Name: IXPIsland, Downlink: downlink}); err != nil {
		panic(fmt.Sprintf("platform: registering IXP island: %v", err))
	}

	hv.Start()
	return &Platform{
		Sim:        s,
		Tracer:     tracer,
		HV:         hv,
		Dom0:       dom0,
		Ctl:        ctl,
		IXP:        x,
		Host:       host,
		Mailbox:    mb,
		Controller: ctrl,
		X86Agent:   x86Agent,
		IXPAgent:   ixpAgent,
		X86Act:     x86Act,
		cfg:        cfg,
	}
}

// AddGuest creates a single-VCPU guest VM, registers it as a platform-wide
// entity with the global controller, and provisions its IXP flow queue —
// the registration step of §2.3.
func (p *Platform) AddGuest(name string, weight int) *xen.Domain {
	d := p.HV.CreateDomain(name, weight, 1)
	if err := p.Controller.RegisterEntity(core.Entity{ID: d.ID(), Name: name, Home: X86Island}); err != nil {
		panic(fmt.Sprintf("platform: registering guest %q: %v", name, err))
	}
	p.IXP.RegisterFlow(d.ID())
	p.guests = append(p.guests, d)
	return d
}

// AddLocalGuest creates a guest VM that does not use the IXP island at all
// (e.g. the disk-playback MPlayer VM of Table 3): it is registered with the
// controller but gets no IXP flow queue.
func (p *Platform) AddLocalGuest(name string, weight int) *xen.Domain {
	d := p.HV.CreateDomain(name, weight, 1)
	if err := p.Controller.RegisterEntity(core.Entity{ID: d.ID(), Name: name, Home: X86Island}); err != nil {
		panic(fmt.Sprintf("platform: registering guest %q: %v", name, err))
	}
	p.guests = append(p.guests, d)
	return d
}

// Guests returns the guest domains in creation order (excluding Dom0).
func (p *Platform) Guests() []*xen.Domain { return p.guests }

// Config returns the applied (defaulted) configuration.
func (p *Platform) Config() Config { return p.cfg }

// TotalGuestUtilization sums the guests' mean CPU utilization (percent of
// one CPU) since start.
func (p *Platform) TotalGuestUtilization(start sim.Time) float64 {
	return p.HV.TotalUtilization(start, p.guests...)
}

// GuestByName returns the guest domain with the given name.
func (p *Platform) GuestByName(name string) (*xen.Domain, error) {
	for _, d := range p.guests {
		if d.Name() == name {
			return d, nil
		}
	}
	return nil, fmt.Errorf("platform: no guest %q", name)
}
