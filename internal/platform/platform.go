// Package platform assembles the paper's prototype: a two-island
// heterogeneous system joining an x86 host (Xen hypervisor, credit
// scheduler, Dom0 + guest VMs) and an IXP2850 network processor over PCIe,
// with the coordination layer registered between them.
//
// Figure 3 of the paper is the wiring diagram this package implements:
// external traffic enters the IXP, is classified into per-VM flow queues,
// crosses PCIe into the host messaging driver, traverses the Dom0 bridge,
// and reaches guest VMs; coordination messages travel the PCI
// configuration-space mailbox between the IXP's XScale agent and the
// global controller in Dom0.
package platform

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/flight"
	"repro/internal/ixp"
	"repro/internal/netsim"
	"repro/internal/overload"
	"repro/internal/pcie"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/xen"
)

// Island names used throughout the prototype.
const (
	X86Island = "x86"
	IXPIsland = "ixp"
)

// Config parameterizes the testbed. Zero values take prototype defaults.
type Config struct {
	Seed         int64       // simulation seed (default 1)
	Xen          xen.Options // x86 island configuration
	IXP          ixp.Config  // IXP island configuration
	HostNet      netsim.Config
	PCIe         pcie.Config // bulk DMA channel parameters
	CoordLatency sim.Time    // one-way coordination mailbox latency (default 150us)
	Dom0Weight   int         // Dom0 credit weight (default 256)

	// TuneRateLimit, when positive, rate-limits outbound coordination
	// messages per (kind, entity) on the IXP agent.
	TuneRateLimit sim.Time

	// MinGuestWeight and MaxGuestWeight clamp Tune-driven weight changes
	// (defaults 64 and 1024).
	MinGuestWeight, MaxGuestWeight int

	// Trace, when non-zero, records structured events of the given
	// categories into Platform.Tracer (ring of TraceCapacity events,
	// default trace.DefaultCapacity).
	Trace         trace.Category
	TraceCapacity int

	// Flight, when non-nil, taps every coordination-plane decision —
	// sends, actuations, weight changes, boosts, IXP adjustments, breaker
	// transitions, lease events — into the flight recorder (which may also
	// be a flight.NewVerifier replaying a recorded log). Recording is
	// purely observational and never changes simulated metrics.
	Flight *flight.Recorder

	// CoordLossRate injects uniform coordination-message loss on the
	// mailbox (0 = lossless). It is legacy shorthand for a CoordFaults
	// plan containing only LossRate and is ignored when CoordFaults is
	// set.
	CoordLossRate float64

	// CoordFaults arms the full deterministic fault-injection harness on
	// the coordination mailbox: loss, bursts, duplication, reordering,
	// latency spikes, timed partitions, and island crash windows (which
	// the platform schedules against the named island's agent).
	CoordFaults *pcie.FaultPlan

	// Reliable decorates both mailbox directions with ReliableEndpoints
	// (sequence numbers, ack/retry with capped exponential backoff,
	// receiver-side dedup and reordering; see core.ClassFor for the
	// per-kind delivery classes).
	Reliable    bool
	ReliableCfg core.ReliableConfig

	// Breaker, when non-nil (and Reliable is set), arms a circuit breaker
	// on each mailbox endpoint's send path: retry exhaustion opens the
	// breaker and further coordination sends fail fast into the
	// graceful-degradation machinery instead of growing retransmit state.
	// Each endpoint derives its own probe-jitter seed from Breaker.Seed.
	Breaker *overload.BreakerConfig

	// Failover, when non-nil, replicates the controller: the group
	// checkpoints coordination state on a sim-time cadence, standbys follow
	// a live actuation tap, and a deterministic lease election promotes the
	// lowest-id live standby within a bounded number of heartbeat intervals
	// of primary death. The group is also armed (with defaults) whenever
	// CoordFaults schedules controller crash or partition windows.
	Failover *core.FailoverConfig

	// OverloadControl, when non-nil, arms the controller's overload
	// translation: every routed Trigger additionally emits a weight-boost
	// Tune to the overloaded island and a shed-rate adjustment to the
	// configured upstream island (the NIC's early-admission gate).
	OverloadControl *core.OverloadControlConfig

	// TriggerRefill and TriggerBurst, when set (burst > 1), put a
	// per-(kind, entity) token bucket on the x86 agent's outbound
	// coordination messages so overload Triggers are damped but not
	// starved.
	TriggerRefill sim.Time
	TriggerBurst  int

	// HeartbeatInterval, when positive, makes the IXP agent emit liveness
	// beacons and starts the controller's lease watchdog plus the agent's
	// uplink-health monitor at that period.
	HeartbeatInterval sim.Time
	// LeaseSuspectAfter and LeaseDeadAfter override the watchdog's
	// silence thresholds (defaults: 3x and 8x HeartbeatInterval).
	LeaseSuspectAfter, LeaseDeadAfter sim.Time
	// DegradeHold is how long the controller waits after the IXP lease
	// dies before reverting guest weights to their registration baselines
	// (default 500ms). A rejoin inside the window cancels the revert.
	DegradeHold sim.Time

	// Energy, when non-nil, arms the energy subsystem: per-island DVFS
	// state machines registered as coordination islands, the integrating
	// energy meter, and the configured governor. Nil leaves the platform
	// bit-for-bit identical to the pre-energy behavior (both islands
	// pinned at their top operating points, no metering).
	Energy *EnergyConfig
}

func (c *Config) applyDefaults() {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.CoordLatency == 0 {
		c.CoordLatency = 150 * sim.Microsecond
	}
	if c.Dom0Weight == 0 {
		c.Dom0Weight = 256
	}
	if c.PCIe == (pcie.Config{}) {
		c.PCIe = pcie.DefaultConfig()
	}
	if c.MinGuestWeight == 0 {
		c.MinGuestWeight = 64
	}
	if c.MaxGuestWeight == 0 {
		c.MaxGuestWeight = 1024
	}
	if c.DegradeHold == 0 {
		c.DegradeHold = 500 * sim.Millisecond
	}
}

// Robustness aggregates the coordination plane's reliability counters from
// every layer — the observability surface for chaos experiments.
type Robustness struct {
	// Reliability-layer protocol stats per mailbox endpoint (zero unless
	// Config.Reliable).
	Uplink   core.ReliableStats // IXP-side endpoint (device -> host data)
	Downlink core.ReliableStats // host-side endpoint (host -> device data)

	// Fault-injection totals across mailbox channels.
	Faults         pcie.FaultStats
	MailboxDropped uint64 // messages consumed by injected loss

	// CorruptDrops counts frames discarded on checksum mismatch across
	// every verifying layer (both mailbox transports plus the reliable
	// endpoints' own defense). CorruptArrived counts corrupted frames the
	// mailbox actually delivered (a frame still in flight at run end was
	// injected but never arrived). The two reconcile exactly: every
	// corrupted frame that arrives is detected, counted, and dropped —
	// never actuated.
	CorruptDrops   uint64
	CorruptArrived uint64

	// Controller-side watchdog and routing counters.
	Heartbeats     uint64
	LeaseExpiries  uint64
	Rejoins        uint64
	StrayAcks      uint64
	UnknownTarget  uint64 // unroutable: island never registered
	UnknownEntity  uint64 // unroutable: entity never registered
	Quarantined    uint64 // unroutable: lease-expired island
	BaselineRevert uint64 // actuator reverts to registration weights

	// IXP-agent degradation counters.
	Degradations       uint64
	Recoveries         uint64
	SuppressedDegraded uint64
	SuppressedCrashed  uint64
	CrashDrops         uint64

	// Circuit-breaker stats per mailbox endpoint (zero unless
	// Config.Breaker armed them).
	UplinkBreaker   overload.BreakerStats
	DownlinkBreaker overload.BreakerStats
	BreakerRejected uint64 // sends refused while a breaker was open (both endpoints)

	// Overload-control plane counters (zero unless Config.OverloadControl).
	ShedTunes  uint64 // upstream shed adjustments the controller issued
	BoostTunes uint64 // weight boosts the controller issued for triggers

	// FlapSuppressed counts lease rejoins absorbed by the watchdog's
	// hysteresis window (expire/rejoin churn not counted as real cycles).
	FlapSuppressed uint64

	// Failover holds the controller group's availability counters (zero
	// unless Config.Failover or controller fault windows armed the group).
	Failover core.FailoverStats
}

// Platform is the assembled testbed.
type Platform struct {
	Sim  *sim.Simulator
	HV   *xen.Hypervisor
	Dom0 *xen.Domain
	Ctl  *xen.Ctl
	IXP  *ixp.IXP
	Host *netsim.HostStack

	Mailbox  *pcie.Mailbox
	Injector *pcie.Injector // nil when no fault plan is armed
	// Controller is the live primary's controller; after a failover it is
	// repointed at the promoted replica's controller.
	Controller *core.Controller
	// Group is the controller replica group (nil unless Config.Failover or
	// controller fault windows armed it).
	Group    *core.ControllerGroup
	X86Agent *core.Agent
	IXPAgent *core.Agent
	X86Act   *core.X86Actuator
	IXPAct   *core.IXPActuator
	Tracer   *trace.Tracer

	// Energy subsystem handles (nil unless Config.Energy): the per-island
	// DVFS state machines, the integrating meter, and — in coordinated
	// mode — the QoS-constrained governor awaiting its p95 sensor.
	X86DVFS     *energy.Machine
	IXPDVFS     *energy.Machine
	EnergyMeter *energy.Meter
	EnergyGov   *energy.Coordinated
	// EnergyCfg is the applied (defaulted) energy configuration.
	EnergyCfg *EnergyConfig

	// UplinkEP/DownlinkEP are the reliable mailbox endpoints (nil unless
	// Config.Reliable). UplinkEP is the IXP side, DownlinkEP the host side.
	UplinkEP   *core.ReliableEndpoint
	DownlinkEP *core.ReliableEndpoint

	// rawUp/rawDown are the wire-level mailbox transports both planes send
	// through; they stamp and verify the frame checksum, so their corrupt
	// counters cover robust and non-robust runs alike.
	rawUp, rawDown *core.MailboxTransport

	cfg    Config
	guests []*xen.Domain
}

// New assembles the two-island prototype and starts the hypervisor.
func New(cfg Config) *Platform {
	cfg.applyDefaults()
	s := sim.New(cfg.Seed)

	var tracer *trace.Tracer
	if cfg.Trace != 0 {
		tracer = trace.New(s, cfg.Trace, cfg.TraceCapacity)
	}

	hv := xen.New(s, cfg.Xen)
	hv.SetTracer(tracer)
	dom0 := hv.CreateDomain("Dom0", cfg.Dom0Weight, 1)
	ctl := xen.NewCtl(hv)
	ctl.SetFlightRecorder(cfg.Flight)

	// Bulk data path: one DMA channel per direction.
	ixpToHost := pcie.NewChannel(s, "ixp->host", cfg.PCIe)
	hostToIXP := pcie.NewChannel(s, "host->ixp", cfg.PCIe)

	host := netsim.NewHostStack(s, dom0, hostToIXP, cfg.HostNet)
	x := ixp.New(s, cfg.IXP, ixpToHost, host.DeliverFromIXP)
	x.SetTracer(tracer)
	x.SetFlightRecorder(cfg.Flight)
	host.ConnectIXPTransmit(x.TransmitFromHost)
	x.ConnectHostGate(host.RingFull)

	// Coordination plane: mailbox in PCI config space, controller in Dom0.
	mb := pcie.NewMailbox(s, cfg.CoordLatency)
	plan := cfg.CoordFaults
	if plan == nil && cfg.CoordLossRate > 0 {
		plan = &pcie.FaultPlan{Seed: cfg.Seed, LossRate: cfg.CoordLossRate}
	}
	var inj *pcie.Injector
	if plan != nil {
		if err := plan.Validate(); err != nil {
			panic(fmt.Sprintf("platform: invalid fault plan: %v", err))
		}
		if !plan.Empty() {
			inj = pcie.NewInjector(*plan)
			mb.SetFaults(inj)
		}
	}
	ctrl := core.NewController()
	ctrl.SetFlightRecorder(s, cfg.Flight)

	// Controller replication: the group wraps routing and island/entity
	// registration so a promoted standby can rebuild the same wiring. It is
	// only built when replication or controller fault windows are asked
	// for — the plain single-controller path is untouched otherwise.
	var group *core.ControllerGroup
	if cfg.Failover != nil || (plan != nil && len(plan.ControllerCrashes)+len(plan.ControllerPartitions) > 0) {
		fcfg := core.FailoverConfig{}
		if cfg.Failover != nil {
			fcfg = *cfg.Failover
		}
		group = core.NewControllerGroup(s, ctrl, fcfg)
		group.SetFlightRecorder(cfg.Flight)
	}
	route := ctrl.Route
	registerIsland := ctrl.RegisterIsland
	if group != nil {
		route = group.Route
		registerIsland = group.RegisterIsland
	}

	x86Act := core.NewX86Actuator(ctl)
	x86Act.MinWeight = cfg.MinGuestWeight
	x86Act.MaxWeight = cfg.MaxGuestWeight
	x86Agent := core.NewAgent(X86Island, nil, route, x86Act, core.WithTracer(tracer))
	x86Agent.SetFlightRecorder(s, cfg.Flight)
	if err := registerIsland(core.IslandHandle{Name: X86Island, Local: x86Agent.Deliver}); err != nil {
		panic(fmt.Sprintf("platform: registering x86 island: %v", err))
	}

	rawUp := core.NewDeviceUplink(mb)
	rawUp.SetTracer(tracer)
	rawDown := core.NewHostDownlink(mb)
	rawDown.SetTracer(tracer)
	if cfg.TriggerBurst > 1 && cfg.TriggerRefill > 0 {
		x86Agent.SetLimiter(core.NewTokenBucketRateLimiter(s, cfg.TriggerRefill, cfg.TriggerBurst))
	}
	if cfg.OverloadControl != nil {
		oc := *cfg.OverloadControl
		if oc.Upstream == "" {
			oc.Upstream = IXPIsland
		}
		if group != nil {
			group.EnableOverloadControl(oc)
		} else {
			ctrl.EnableOverloadControl(oc)
		}
	}

	var ixpOpts []core.AgentOption
	if cfg.TuneRateLimit > 0 {
		ixpOpts = append(ixpOpts, core.WithRateLimit(s, cfg.TuneRateLimit))
	}
	ixpOpts = append(ixpOpts, core.WithTracer(tracer))

	var (
		ixpUplink   core.Transport = rawUp
		ixpDownlink core.Transport = rawDown
		epDev       *core.ReliableEndpoint
		epHost      *core.ReliableEndpoint
	)
	if cfg.Reliable {
		// Each endpoint sends on its raw direction and consumes the
		// reverse one; acks ride the reverse direction. With a breaker
		// template configured, each endpoint gets its own copy with a
		// derived probe-jitter seed so their probes do not synchronize.
		upCfg, downCfg := cfg.ReliableCfg, cfg.ReliableCfg
		if cfg.Breaker != nil {
			upB, downB := *cfg.Breaker, *cfg.Breaker
			upB.Seed = cfg.Breaker.Seed*2 + 1
			downB.Seed = cfg.Breaker.Seed*2 + 2
			upCfg.Breaker, downCfg.Breaker = &upB, &downB
		}
		epDev = core.NewReliableEndpoint(s, "ixp-uplink", rawUp, rawDown, upCfg)
		epHost = core.NewReliableEndpoint(s, "host-downlink", rawDown, rawUp, downCfg)
		epHost.SetReceiver(route)
		ixpUplink, ixpDownlink = epDev, epHost
	} else {
		rawUp.SetReceiver(route)
	}
	ixpAct := core.NewIXPActuator(s, x)
	ixpAgent := core.NewAgent(IXPIsland, ixpUplink, nil, ixpAct, ixpOpts...)
	ixpAgent.SetFlightRecorder(s, cfg.Flight)
	if cfg.Flight != nil {
		if b := epDev.Breaker(); b != nil {
			b.SetFlightRecorder(cfg.Flight, "ixp-uplink")
		}
		if b := epHost.Breaker(); b != nil {
			b.SetFlightRecorder(cfg.Flight, "host-downlink")
		}
	}
	if cfg.Reliable {
		epDev.SetReceiver(ixpAgent.Deliver)
	} else {
		rawDown.SetReceiver(ixpAgent.Deliver)
	}
	if err := registerIsland(core.IslandHandle{Name: IXPIsland, Downlink: ixpDownlink}); err != nil {
		panic(fmt.Sprintf("platform: registering IXP island: %v", err))
	}

	p := &Platform{
		Sim:        s,
		Tracer:     tracer,
		HV:         hv,
		Dom0:       dom0,
		Ctl:        ctl,
		IXP:        x,
		Host:       host,
		Mailbox:    mb,
		Injector:   inj,
		Controller: ctrl,
		Group:      group,
		X86Agent:   x86Agent,
		IXPAgent:   ixpAgent,
		X86Act:     x86Act,
		IXPAct:     ixpAct,
		UplinkEP:   epDev,
		DownlinkEP: epHost,
		rawUp:      rawUp,
		rawDown:    rawDown,
		cfg:        cfg,
	}

	if group != nil {
		// Promotions repoint the platform's controller handle; anti-entropy
		// reconciles against each agent's authoritative actuation epoch,
		// and checkpoints capture the actuation baselines plus (when the
		// reliable layer is armed) the endpoints' sequence cursors.
		group.OnPromote(func(c *core.Controller) { p.Controller = c })
		group.SetReconciler(X86Island, x86Agent.ActuationEpoch)
		group.SetReconciler(IXPIsland, ixpAgent.ActuationEpoch)
		providers := core.ReplicaProviders{
			Baselines: x86Act.Baselines,
			RestoreBaselines: func(bs []core.BaselineSnapshot) {
				for _, b := range bs {
					x86Act.SetBaseline(b.Entity, b.Weight)
				}
			},
		}
		if cfg.Reliable {
			providers.Endpoints = func() []core.EndpointSeqState {
				// Sorted by endpoint name: "host-downlink" < "ixp-uplink".
				return []core.EndpointSeqState{epHost.SeqState(), epDev.SeqState()}
			}
			providers.FlushStale = epHost.FlushStale
		}
		group.SetProviders(providers)
	}

	if cfg.Energy != nil {
		p.enableEnergy(*cfg.Energy)
	}
	if cfg.HeartbeatInterval > 0 {
		p.enableWatchdog()
	}
	p.scheduleCrashes(plan)
	if group != nil {
		group.Start()
	}

	hv.Start()
	return p
}

// enableWatchdog wires the liveness machinery: IXP heartbeats, the
// controller's lease watchdog (whose OnDead arms the baseline revert after
// the hold-down), and both agents' uplink-health monitors.
func (p *Platform) enableWatchdog() {
	cfg := p.cfg
	p.IXPAgent.EnableHeartbeat(p.Sim, cfg.HeartbeatInterval)

	var revert *sim.Event
	wcfg := core.WatchdogConfig{
		CheckPeriod:  cfg.HeartbeatInterval,
		SuspectAfter: cfg.LeaseSuspectAfter,
		DeadAfter:    cfg.LeaseDeadAfter,
		OnDead: func(island string) {
			if island != IXPIsland {
				return
			}
			if revert != nil {
				revert.Cancel()
			}
			revert = p.Sim.After(cfg.DegradeHold, func() {
				revert = nil
				p.X86Act.RevertToBaseline()
			})
		},
		OnRejoin: func(island string) {
			if island != IXPIsland || revert == nil {
				return
			}
			revert.Cancel()
			revert = nil
		},
	}
	if p.Group != nil {
		// The group stores the config so every promoted primary restarts
		// the watchdog with the same thresholds and revert hooks.
		p.Group.EnableWatchdog(wcfg)
	} else {
		p.Controller.EnableWatchdog(p.Sim, wcfg)
	}
	p.IXPAgent.EnableDegradation(p.Sim, core.DegradeConfig{
		CheckPeriod:  cfg.HeartbeatInterval,
		LeaseTimeout: cfg.LeaseDeadAfter,
	})

	// The x86 agent watches the controller symmetrically: the watchdog
	// sweep pings co-located islands too, so when the coordination plane
	// itself goes silent — a dead controller with no standby left — the
	// host reverts coordination-derived weights to the registration
	// baselines after the same hold-down. A promoted (or restarted)
	// primary resumes pings, the agent recovers, and the tune loop
	// rebuilds actuation from the reconciled state.
	var x86Revert *sim.Event
	p.X86Agent.EnableDegradation(p.Sim, core.DegradeConfig{
		CheckPeriod:  cfg.HeartbeatInterval,
		LeaseTimeout: cfg.LeaseDeadAfter,
		OnDegrade: func() {
			if x86Revert != nil {
				x86Revert.Cancel()
			}
			x86Revert = p.Sim.After(cfg.DegradeHold, func() {
				x86Revert = nil
				p.X86Act.RevertToBaseline()
			})
		},
		OnRecover: func() {
			if x86Revert != nil {
				x86Revert.Cancel()
				x86Revert = nil
			}
		},
	})
}

// scheduleCrashes arms the fault plan's island crash windows against the
// matching agents: a crashed agent emits nothing (its lease expires) and
// drops everything inbound until the window closes.
func (p *Platform) scheduleCrashes(plan *pcie.FaultPlan) {
	if plan == nil {
		return
	}
	agents := map[string]*core.Agent{X86Island: p.X86Agent, IXPIsland: p.IXPAgent}
	for _, cw := range plan.Crashes {
		a, ok := agents[cw.Island]
		if !ok {
			panic(fmt.Sprintf("platform: crash window names unknown island %q", cw.Island))
		}
		w := cw
		p.Sim.At(w.Start, func() { a.SetCrashed(true) })
		p.Sim.At(w.Start+w.Duration, func() { a.SetCrashed(false) })
	}
	for _, rw := range plan.ControllerCrashes {
		w := rw
		if w.Replica >= p.Group.Replicas() {
			panic(fmt.Sprintf("platform: controller crash window names replica %d of %d", w.Replica, p.Group.Replicas()))
		}
		p.Sim.At(w.Start, func() { p.Group.CrashReplica(w.Replica) })
		p.Sim.At(w.Start+w.Duration, func() { p.Group.RestoreReplica(w.Replica) })
	}
	for _, rw := range plan.ControllerPartitions {
		w := rw
		if w.Replica >= p.Group.Replicas() {
			panic(fmt.Sprintf("platform: controller partition window names replica %d of %d", w.Replica, p.Group.Replicas()))
		}
		p.Sim.At(w.Start, func() { p.Group.IsolateReplica(w.Replica) })
		p.Sim.At(w.Start+w.Duration, func() { p.Group.HealReplica(w.Replica) })
	}
}

// Robustness snapshots the coordination plane's reliability counters.
func (p *Platform) Robustness() Robustness {
	r := Robustness{
		Uplink:         p.UplinkEP.Stats(),
		Downlink:       p.DownlinkEP.Stats(),
		MailboxDropped: p.Mailbox.Dropped(),
		Heartbeats:     p.Controller.Heartbeats(),
		LeaseExpiries:  p.Controller.LeaseExpiries(),
		Rejoins:        p.Controller.Rejoins(),
		StrayAcks:      p.Controller.StrayAcks(),
		UnknownTarget:  p.Controller.UnroutableFor(core.UnrouteUnknownTarget),
		UnknownEntity:  p.Controller.UnroutableFor(core.UnrouteUnknownEntity),
		Quarantined:    p.Controller.UnroutableFor(core.UnrouteQuarantined),
		BaselineRevert: p.X86Act.Reverts(),
	}
	r.CorruptDrops = p.rawUp.CorruptDropped() + p.rawDown.CorruptDropped() +
		r.Uplink.CorruptDrops + r.Downlink.CorruptDrops
	r.CorruptArrived = p.Mailbox.CorruptArrived()
	if p.Injector != nil {
		r.Faults = p.Injector.TotalStats()
	}
	st := p.IXPAgent.Stats()
	r.Degradations = st.Degradations
	r.Recoveries = st.Recoveries
	r.SuppressedDegraded = st.SuppressedDegraded
	r.SuppressedCrashed = st.SuppressedCrashed
	r.CrashDrops = st.CrashDrops
	if b := p.UplinkEP.Breaker(); b != nil {
		r.UplinkBreaker = b.Stats()
	}
	if b := p.DownlinkEP.Breaker(); b != nil {
		r.DownlinkBreaker = b.Stats()
	}
	r.BreakerRejected = r.Uplink.BreakerRejected + r.Downlink.BreakerRejected
	r.ShedTunes = p.Controller.ShedTunesIssued()
	r.BoostTunes = p.Controller.BoostTunesIssued()
	r.FlapSuppressed = p.Controller.FlapSuppressed()
	if p.Group != nil {
		r.Failover = p.Group.Stats()
	}
	return r
}

// registerEntity registers a platform entity with the controller — through
// the replica group when it exists, so promoted controllers re-register the
// same entities.
func (p *Platform) registerEntity(e core.Entity) error {
	if p.Group != nil {
		return p.Group.RegisterEntity(e)
	}
	return p.Controller.RegisterEntity(e)
}

// AddGuest creates a single-VCPU guest VM, registers it as a platform-wide
// entity with the global controller, and provisions its IXP flow queue —
// the registration step of §2.3.
func (p *Platform) AddGuest(name string, weight int) *xen.Domain {
	d := p.HV.CreateDomain(name, weight, 1)
	if err := p.registerEntity(core.Entity{ID: d.ID(), Name: name, Home: X86Island}); err != nil {
		panic(fmt.Sprintf("platform: registering guest %q: %v", name, err))
	}
	p.X86Act.SetBaseline(d.ID(), weight)
	p.IXP.RegisterFlow(d.ID())
	p.guests = append(p.guests, d)
	return d
}

// AddLocalGuest creates a guest VM that does not use the IXP island at all
// (e.g. the disk-playback MPlayer VM of Table 3): it is registered with the
// controller but gets no IXP flow queue.
func (p *Platform) AddLocalGuest(name string, weight int) *xen.Domain {
	d := p.HV.CreateDomain(name, weight, 1)
	if err := p.registerEntity(core.Entity{ID: d.ID(), Name: name, Home: X86Island}); err != nil {
		panic(fmt.Sprintf("platform: registering guest %q: %v", name, err))
	}
	p.X86Act.SetBaseline(d.ID(), weight)
	p.guests = append(p.guests, d)
	return d
}

// Guests returns the guest domains in creation order (excluding Dom0).
func (p *Platform) Guests() []*xen.Domain { return p.guests }

// Config returns the applied (defaulted) configuration.
func (p *Platform) Config() Config { return p.cfg }

// TotalGuestUtilization sums the guests' mean CPU utilization (percent of
// one CPU) since start.
func (p *Platform) TotalGuestUtilization(start sim.Time) float64 {
	return p.HV.TotalUtilization(start, p.guests...)
}

// GuestByName returns the guest domain with the given name.
func (p *Platform) GuestByName(name string) (*xen.Domain, error) {
	for _, d := range p.guests {
		if d.Name() == name {
			return d, nil
		}
	}
	return nil, fmt.Errorf("platform: no guest %q", name)
}
