package repro

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/flight"
)

// FlightMeta is the replay context a flight log's header carries: because
// every run is a pure function of its configuration and seed, this is all a
// replayer needs to re-produce the recorded event stream.
type FlightMeta struct {
	Config      RubisConfig `json:"config"`
	Coordinated bool        `json:"coordinated"`
}

// FlightDivergence is the public face of a replay mismatch: the first point
// where the live run departed from the log, with sim-time, category, and
// both payloads.
type FlightDivergence struct {
	Index      int     // event ordinal (0-based)
	SimTimeSec float64 // sim-time of the diverging event, seconds
	Category   string  // flight category of the diverging event
	Want       string  // the recorded event ("" if the log was exhausted)
	Got        string  // the live event ("" if the live run fell short)
	Detail     string  // full human-readable report
}

// String renders the full divergence report.
func (d *FlightDivergence) String() string { return d.Detail }

// publicDivergence converts the internal divergence.
func publicDivergence(d *flight.Divergence) *FlightDivergence {
	if d == nil {
		return nil
	}
	out := &FlightDivergence{Index: d.Index, Detail: d.String()}
	ref := d.Got
	if ref == nil {
		ref = d.Want
	}
	out.SimTimeSec = ref.T.Seconds()
	out.Category = ref.Cat.String()
	if d.Want != nil {
		out.Want = d.Want.String()
	}
	if d.Got != nil {
		out.Got = d.Got.String()
	}
	return out
}

// FlightReplay is the outcome of replaying a recorded run.
type FlightReplay struct {
	Meta   FlightMeta
	Events int       // events the log holds
	Run    *RubisRun // the re-run's measurements
	// Divergence is nil when the replay reproduced the log exactly.
	Divergence *FlightDivergence
}

// RecordRubis executes one RUBiS run with the flight recorder armed,
// streaming the coordination-event log to w. The returned measurements are
// identical to an unrecorded RunRubis with the same arguments: recording is
// purely observational.
func RecordRubis(cfg RubisConfig, coordinated bool, w io.Writer) (*RubisRun, error) {
	meta, err := json.Marshal(FlightMeta{Config: cfg, Coordinated: coordinated})
	if err != nil {
		return nil, fmt.Errorf("repro: encoding flight meta: %w", err)
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1 // the platform's default
	}
	rec, err := flight.NewRecorder(w, seed, meta, 0)
	if err != nil {
		return nil, err
	}
	run := runRubis(cfg, coordinated, rec)
	if err := rec.Close(); err != nil {
		return nil, err
	}
	return run, nil
}

// ReplayRubis decodes a recorded flight log, re-runs the simulation from
// the configuration and seed in its header, and streams the live events
// against the log. A nil FlightReplay.Divergence certifies the run
// reproduced every recorded coordination decision at the same sim-times.
func ReplayRubis(data []byte) (*FlightReplay, error) {
	log, err := flight.Decode(data)
	if err != nil {
		return nil, err
	}
	var meta FlightMeta
	if err := json.Unmarshal(log.Meta, &meta); err != nil {
		return nil, fmt.Errorf("repro: flight log carries undecodable meta: %w", err)
	}
	v := flight.NewVerifier(log)
	run := runRubis(meta.Config, meta.Coordinated, v)
	return &FlightReplay{
		Meta:       meta,
		Events:     len(log.Events),
		Run:        run,
		Divergence: publicDivergence(v.Divergence()),
	}, nil
}

// recordToFile services RubisConfig.FlightLog: it runs the experiment with
// a recorder streaming to the named file.
func recordToFile(cfg RubisConfig, coordinated bool, path string) *RubisRun {
	f, err := os.Create(path)
	if err != nil {
		panic("repro: creating flight log: " + err.Error())
	}
	defer func() {
		if cerr := f.Close(); cerr != nil {
			panic("repro: closing flight log: " + cerr.Error())
		}
	}()
	sub := cfg
	sub.FlightLog = "" // the header meta must replay without re-recording
	run, err := RecordRubis(sub, coordinated, f)
	if err != nil {
		panic("repro: recording flight log: " + err.Error())
	}
	return run
}
