package repro

// Chaos tests: the reliable coordination plane must make coordination safe
// to leave on. Under injected faults — loss, duplication, reordering,
// bursts, partitions, even island crashes — a coordinated run must never
// end up materially worse than simply not coordinating, and the whole run
// must stay deterministic.

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"repro/internal/sweep"
)

func chaosRubisCfg(seed int64) RubisConfig {
	return RubisConfig{Seed: seed, Duration: 40 * time.Second, Warmup: 10 * time.Second}
}

// chaosBaseline caches the uncoordinated run shared by the chaos tests
// (they all compare against the same fault-free baseline).
var chaosBaseline *RubisRun

func chaosBase(t *testing.T) *RubisRun {
	t.Helper()
	if chaosBaseline == nil {
		chaosBaseline = RunRubis(chaosRubisCfg(1), false)
	}
	return chaosBaseline
}

// chaosOverloadCfg is the saturated-deployment shape the overload chaos
// tests drive: 2.5x sessions against bounded tier queues.
func chaosOverloadCfg(seed int64, plan FaultPlan, coordinated bool) RubisConfig {
	cfg := chaosRubisCfg(seed)
	cfg.Robust = true
	cfg.Faults = &plan
	cfg.LoadFactor = 2.5
	cfg.RequestTimeout = 2 * time.Second
	cfg.Overload = &OverloadControl{
		QueueCap: 64, QueueDeadline: 300 * time.Millisecond,
		Threshold: 150 * time.Millisecond, Coordinated: coordinated,
	}
	return cfg
}

// requireInvariants judges the bundle against the oracle catalog and fails
// the test on any violation. The chaos tests' numeric contracts — goodput
// floor, bounded mean/p95, ledger conservation, at-most-once Tunes, replay
// divergence — live in chaos_oracles.go, so these tests and the chaos
// search engine enforce exactly the same properties.
func requireInvariants(t *testing.T, cr ChaosRun) {
	t.Helper()
	for _, v := range FailedOracles(CheckInvariants(cr)) {
		t.Errorf("oracle %s violated: %s", v.Oracle, v.Detail)
	}
}

// Under every fault plan in the matrix the reliable plane must keep the
// coordinated run from falling below the uncoordinated baseline: worst
// case, degradation reverts to baseline behaviour, so "never more than 5%
// worse" on both throughput and mean response time.
func TestChaosCoordinationNeverHurts(t *testing.T) {
	if testing.Short() {
		t.Skip("long integration test")
	}
	matrix := []struct {
		name string
		plan FaultPlan
	}{
		{"chaos-mix", FaultPlan{
			LossRate: 0.2, DupRate: 0.1, ReorderRate: 0.1,
			SpikeRate: 0.05, JitterMax: 100 * time.Microsecond,
			BurstRate: 0.01, BurstLen: 8,
		}},
		{"two-partitions", FaultPlan{Partitions: []Partition{
			{Start: 12 * time.Second, Duration: 4 * time.Second},
			{Start: 25 * time.Second, Duration: 4 * time.Second},
		}}},
		{"crash-restart", FaultPlan{Crashes: []CrashWindow{
			{Island: "ixp", Start: 15 * time.Second, Duration: 5 * time.Second},
		}}},
	}
	// Fan the scenarios across the sweep worker pool; trials land in
	// stable matrix order, so res.Decode(i) is scenario i regardless of
	// completion order (and repetition 0 keeps the base seed, preserving
	// the exact runs this test has always asserted on).
	type chaosPointCfg struct {
		Plan FaultPlan `json:"plan"`
	}
	points := make([]sweep.Point, len(matrix))
	for i, sc := range matrix {
		points[i] = sweep.Point{Name: sc.name, Config: chaosPointCfg{Plan: sc.plan}}
	}
	res, err := sweep.Run(points, func(tr sweep.Trial) (any, error) {
		cfg := chaosRubisCfg(tr.Seed)
		cfg.Robust = true
		plan := tr.Point.Config.(chaosPointCfg).Plan
		cfg.Faults = &plan
		return RunRubis(cfg, true), nil
	}, sweep.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}

	base := chaosBase(t)
	for i, sc := range matrix {
		sc := sc
		var coord RubisRun
		if err := res.Decode(i, &coord); err != nil {
			t.Fatal(err)
		}
		t.Run(sc.name, func(t *testing.T) {
			cfg := chaosRubisCfg(1)
			cfg.Robust = true
			cfg.Faults = &sc.plan
			requireInvariants(t, ChaosRun{Config: cfg, Coordinated: true, Run: &coord, Baseline: base})
			// The run completed with the plane reconverged: Tunes applied and
			// (for lossy plans) really exercised the reliability machinery.
			rb := coord.Robustness
			if coord.TunesApplied == 0 {
				t.Error("no Tunes applied; coordination never (re)converged")
			}
			if sc.plan.LossRate > 0 {
				if rb.FaultDrops == 0 {
					t.Error("fault plan injected no drops; assertion is vacuous")
				}
				if rb.Retransmits == 0 {
					t.Error("no retransmits despite injected loss")
				}
				if rb.DupDrops == 0 {
					t.Error("no duplicate drops despite injected duplication")
				}
				if rb.AcksReceived == 0 {
					t.Error("reliable plane exchanged no acks")
				}
			}
			if len(sc.plan.Partitions) > 0 && rb.FaultDrops == 0 {
				t.Error("partitions dropped nothing; assertion is vacuous")
			}
			if len(sc.plan.Crashes) > 0 && rb.LeaseExpiries == 0 {
				t.Error("crash window never expired the lease")
			}
		})
	}
}

// An IXP crash mid-run must walk the whole degradation ladder — lease
// expiry, quarantine-side revert to baseline weights, agent-side
// suppression — and then rejoin and reconverge, still ending within 5% of
// the uncoordinated baseline.
func TestChaosCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("long integration test")
	}
	base := chaosBase(t)
	cfg := chaosRubisCfg(1)
	cfg.Robust = true
	cfg.Faults = &FaultPlan{Crashes: []CrashWindow{
		{Island: "ixp", Start: 15 * time.Second, Duration: 5 * time.Second},
	}}
	// Run with the flight recorder armed, then replay the log: the whole
	// degradation ladder — crash drops, lease expiry, quarantine, revert,
	// rejoin — must reproduce event-for-event from the same config and seed.
	var flightLog bytes.Buffer
	coord, err := RecordRubis(cfg, true, &flightLog)
	if err != nil {
		t.Fatalf("RecordRubis: %v", err)
	}
	rep, err := ReplayRubis(flightLog.Bytes())
	if err != nil {
		t.Fatalf("ReplayRubis: %v", err)
	}
	// Replay divergence, goodput floor, and bounded mean are all oracle
	// territory now.
	requireInvariants(t, ChaosRun{Config: cfg, Coordinated: true, Run: coord, Baseline: base, Replay: rep})

	rb := coord.Robustness
	if rb.LeaseExpiries < 1 {
		t.Error("crash did not expire the IXP lease")
	}
	if rb.Rejoins < 1 {
		t.Error("restarted island never rejoined")
	}
	if rb.BaselineReverts < 1 {
		t.Error("actuator never reverted to baseline weights")
	}
	if rb.Degradations < 1 || rb.Recoveries < 1 {
		t.Errorf("agent degradations=%d recoveries=%d, want >=1 each",
			rb.Degradations, rb.Recoveries)
	}
	if rb.CrashDrops < 1 {
		t.Error("crashed agent dropped no inbound messages")
	}
	if rb.SuppressedCrashed < 1 {
		t.Error("crashed agent suppressed no outbound messages")
	}
	// Coordination resumed after the crash window: Tunes flowed again.
	if rb.Heartbeats == 0 || coord.TunesApplied == 0 {
		t.Errorf("heartbeats=%d tunesApplied=%d: plane did not reconverge",
			rb.Heartbeats, coord.TunesApplied)
	}
}

// TestChaosOverload drives the deployment past saturation (2.5× sessions,
// bounded tier queues) while a partition then a crash window hit the
// coordination mailbox. The overload contract mirrors the PR 2 chaos
// contract: coordinated shedding — whose control loop rides the faulty
// mailbox — must never end up more than 5% worse on goodput than
// uncoordinated local shedding under the same fault plan, and the
// admission counters must reconcile exactly per tier.
func TestChaosOverload(t *testing.T) {
	if testing.Short() {
		t.Skip("long integration test")
	}
	plans := []struct {
		name string
		plan FaultPlan
	}{
		{"partition", FaultPlan{Partitions: []Partition{
			{Start: 12 * time.Second, Duration: 6 * time.Second},
		}}},
		{"crash", FaultPlan{Crashes: []CrashWindow{
			{Island: "ixp", Start: 15 * time.Second, Duration: 5 * time.Second},
		}}},
	}
	type ovPointCfg struct {
		Plan        FaultPlan `json:"plan"`
		Coordinated bool      `json:"coordinated"`
	}
	var points []sweep.Point
	for _, sc := range plans {
		for _, coord := range []bool{false, true} {
			name := sc.name + "/local"
			if coord {
				name = sc.name + "/coordinated"
			}
			points = append(points, sweep.Point{Name: name, Config: ovPointCfg{Plan: sc.plan, Coordinated: coord}})
		}
	}
	res, err := sweep.Run(points, func(tr sweep.Trial) (any, error) {
		pc := tr.Point.Config.(ovPointCfg)
		cfg := chaosOverloadCfg(tr.Seed, pc.Plan, pc.Coordinated)
		return RunRubis(cfg, pc.Coordinated), nil
	}, sweep.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}

	for i, sc := range plans {
		sc := sc
		var local, coord RubisRun
		if err := res.Decode(2*i, &local); err != nil {
			t.Fatal(err)
		}
		if err := res.Decode(2*i+1, &coord); err != nil {
			t.Fatal(err)
		}
		t.Run(sc.name, func(t *testing.T) {
			// Goodput floor, ledger conservation, bounded p95, and
			// at-most-once delivery all ride the oracle catalog, with the
			// local-shedding run as the baseline.
			cfg := chaosOverloadCfg(1, sc.plan, true)
			requireInvariants(t, ChaosRun{Config: cfg, Coordinated: true, Run: &coord, Baseline: &local})
			// Non-vacuity: the fault plan really hit the coordination
			// plane (partitions eat mailbox messages; crash windows show
			// up as lease expiries), and the overload plane really shed
			// on both sides of the comparison.
			if len(sc.plan.Partitions) > 0 && coord.Robustness.FaultDrops == 0 {
				t.Error("partition plan dropped nothing; comparison is vacuous")
			}
			if len(sc.plan.Crashes) > 0 && coord.Robustness.LeaseExpiries == 0 {
				t.Error("crash plan expired no leases; comparison is vacuous")
			}
			for _, run := range []struct {
				name string
				r    *RubisRun
			}{{"local", &local}, {"coordinated", &coord}} {
				ov := run.r.Overload
				if ov.QueueShed+ov.Expired+ov.IXPShed == 0 {
					t.Errorf("%s run shed nothing at 2.5x load", run.name)
				}
			}
			if coord.Overload.TriggersSent == 0 {
				t.Error("coordinated run raised no overload Triggers")
			}
		})
	}
}

// Per-tier admission counters must reconcile exactly at drain:
// offered == served + shed + expired once the run has ended (the sim
// drains every queued request or expires it).
func TestChaosOverloadReconciliation(t *testing.T) {
	if testing.Short() {
		t.Skip("long integration test")
	}
	cfg := chaosRubisCfg(1)
	cfg.LoadFactor = 2.5
	cfg.RequestTimeout = 2 * time.Second
	cfg.Overload = &OverloadControl{
		QueueCap: 64, QueueDeadline: 300 * time.Millisecond, Threshold: 150 * time.Millisecond,
		Coordinated: true,
	}
	r := RunRubis(cfg, true)
	ov := r.Overload
	if ov.QueueShed+ov.Expired == 0 {
		t.Fatal("no tier shed or expired anything at 2.5x load; reconciliation is vacuous")
	}
	// The per-tier conservation law is the overload-ledger oracle.
	requireInvariants(t, ChaosRun{Config: cfg, Coordinated: true, Run: r})
}

// Whole-run determinism: same seed, same fault plan, same reliable plane
// — byte-identical results, robustness counters included.
func TestChaosDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("long integration test")
	}
	run := func() *RubisRun {
		cfg := chaosRubisCfg(1)
		cfg.Robust = true
		cfg.Faults = &FaultPlan{
			Seed: 7, LossRate: 0.15, DupRate: 0.05, ReorderRate: 0.05,
			Partitions: []Partition{{Start: 15 * time.Second, Duration: 3 * time.Second}},
		}
		return RunRubis(cfg, true)
	}
	first, second := run(), run()
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("identical chaos runs diverged:\n first: %+v\nsecond: %+v", first, second)
	}
	if first.Robustness.FaultDrops == 0 {
		t.Fatal("chaos plan injected nothing; determinism check is vacuous")
	}
}
