package repro

// Scenario conformance: the declarative workload DSL must validate with
// diagnosable errors, compile to deterministic runs, sweep
// byte-identically across worker counts, and record/replay through the
// flight recorder like every other experiment.

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/scenario"
)

func scenarioMatrixCfg() RubisConfig {
	// Short runs: 10 matrix points at 6 simulated seconds keep the test
	// within a few wall-clock seconds per sweep.
	return RubisConfig{Seed: 1, Duration: 6 * time.Second}
}

// TestScenarioMatrixParallelDeterminism runs the scenario matrix
// sequentially and with an 8-worker pool and requires byte-identical
// canonical JSON — trial order, seeds, and every simulated metric. The
// trace is re-derived inside each trial, so this also pins that
// generation is a pure function of the spec and seed.
func TestScenarioMatrixParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("long integration test")
	}
	run := func(workers int) (*ScenarioMatrixResult, []byte) {
		res, err := RunScenarioMatrix(scenarioMatrixCfg(), SweepOptions{Workers: workers, Seed: 1})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		blob, err := res.Sweep.DeterministicJSON()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return res, blob
	}

	seq, seqJSON := run(1)
	par, parJSON := run(8)
	if string(seqJSON) != string(parJSON) {
		t.Fatalf("parallel sweep diverged from sequential:\nworkers=1:\n%s\nworkers=8:\n%s", seqJSON, parJSON)
	}
	if len(par.Rows) != len(ScenarioMatrixPoints(scenarioMatrixCfg())) {
		t.Fatalf("matrix produced %d rows, want %d", len(par.Rows), len(ScenarioMatrixPoints(scenarioMatrixCfg())))
	}
	_ = seq

	// The matrix must actually exercise the machinery each scenario arms,
	// or the byte-compare proves nothing interesting.
	flash, ok := par.Row("flash-crowd+overload", "coord")
	if !ok {
		t.Fatal("matrix lost its flash-crowd+overload/coord point")
	}
	if flash.Shed == 0 && flash.Abandoned == 0 {
		t.Error("flash crowd shed and abandoned nothing; overload scenario is near-vacuous")
	}
	tail, ok := par.Row("heavy-tail+partition", "coord")
	if !ok {
		t.Fatal("matrix lost its heavy-tail+partition/coord point")
	}
	if tail.Retransmits == 0 {
		t.Error("partition scenario drove no retransmits; fault composition is near-vacuous")
	}
	for _, row := range par.Rows {
		if row.Throughput <= 0 {
			t.Errorf("scenario %s/%s served nothing", row.Scenario, row.Plane)
		}
	}
}

// TestScenarioFlightReplay pins trace-driven runs to the flight
// recorder: a generated-workload scenario with faults armed must record
// and replay with zero divergence. The workload spec travels inside the
// recorded config, so the replay re-derives the identical trace.
func TestScenarioFlightReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("long integration test")
	}
	sc := Scenario{
		Name: "replay", Seed: 1,
		Duration: 6 * time.Second, Warmup: 2 * time.Second,
		Workload: &Workload{Kind: "kv-tier", Rate: 60},
		Faults:   &FaultPlan{LossRate: 0.2},
		Robust:   true,
	}
	cfg, err := sc.Compile()
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}

	var buf bytes.Buffer
	run, err := RecordRubis(cfg, true, &buf)
	if err != nil {
		t.Fatalf("RecordRubis: %v", err)
	}
	if run.Throughput <= 0 {
		t.Error("trace-driven run served nothing; replay check is near-vacuous")
	}
	if run.Robustness.FaultDrops == 0 {
		t.Error("loss plan dropped nothing; replay check is near-vacuous")
	}
	rep, err := ReplayRubis(buf.Bytes())
	if err != nil {
		t.Fatalf("ReplayRubis: %v", err)
	}
	if rep.Divergence != nil {
		t.Errorf("trace-driven run does not replay deterministically: %v", rep.Divergence)
	}
	if rep.Events == 0 {
		t.Error("trace-driven run recorded no flight events")
	}
}

// TestScenarioValidation: malformed scenarios are diagnosable errors
// from Validate/Compile, never panics.
func TestScenarioValidation(t *testing.T) {
	dur := 10 * time.Second
	cases := []struct {
		name string
		sc   Scenario
		want string
	}{
		{"unknown kind", Scenario{Workload: &Workload{Kind: "mystery"}}, "unknown generator kind"},
		{"negative rate", Scenario{Workload: &Workload{Kind: "diurnal", Rate: -3}}, "negative"},
		{"negative duration", Scenario{Duration: -dur}, "negative duration"},
		{"warmup swallows run", Scenario{Duration: dur, Warmup: dur}, "no measurement window"},
		{"negative load", Scenario{LoadFactor: -1}, "negative load factor"},
		{"trace without path", Scenario{Workload: &Workload{Kind: "trace"}}, "requires a path"},
		{"path on closed loop", Scenario{Workload: &Workload{Kind: "sessions", Path: "x.wtrace"}}, "does not take a trace path"},
		{"bad mix", Scenario{Workload: &Workload{Mix: "replay"}}, "unknown workload mix"},
		{"bad shed policy", Scenario{Overload: &OverloadControl{Policy: "random"}}, "unknown shed policy"},
		{"negative replicas", Scenario{Failover: &FailoverControl{Replicas: -1}}, "negative replica count"},
		{"overlapping crashes", Scenario{Faults: &FaultPlan{Crashes: []CrashWindow{
			{Island: "ixp", Start: time.Second, Duration: 2 * time.Second},
			{Island: "ixp", Start: 2 * time.Second, Duration: time.Second},
		}}}, "overlaps"},
		{"overlapping replica windows", Scenario{Faults: &FaultPlan{
			ControllerCrashes:    []ReplicaWindow{{Replica: 0, Start: time.Second, Duration: 2 * time.Second}},
			ControllerPartitions: []ReplicaWindow{{Replica: 0, Start: 2 * time.Second, Duration: time.Second}},
		}}, "overlaps"},
		{"overlapping partitions", Scenario{Faults: &FaultPlan{Partitions: []Partition{
			{Start: time.Second, Duration: 2 * time.Second, Channels: []string{"mailbox:to-host"}},
			{Start: 2 * time.Second, Duration: time.Second},
		}}}, "overlaps"},
		{"bad governor", Scenario{Energy: &EnergyControl{Governor: "turbo"}}, "unknown governor"},
		{"negative QoS target", Scenario{Energy: &EnergyControl{QoSTargetP95: -time.Second}}, "negative QoS target"},
		{"x86 point over max", Scenario{Energy: &EnergyControl{
			X86Points: []DVFSPoint{{MHz: 4000, Voltage: 1}},
		}}, "MHz outside"},
		{"x86 point bad voltage", Scenario{Energy: &EnergyControl{
			X86Points: []DVFSPoint{{MHz: 2000, Voltage: 1.3}},
		}}, "voltage"},
		{"unsorted x86 table", Scenario{Energy: &EnergyControl{
			X86Points: []DVFSPoint{{MHz: 2666, Voltage: 1}, {MHz: 1333, Voltage: 0.85}},
		}}, "not strictly increasing"},
		{"IXP pool cap out of range", Scenario{Energy: &EnergyControl{IXPMaxPools: 99}}, "pool cap"},
	}
	for _, tc := range cases {
		err := tc.sc.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want error containing %q", tc.name, err, tc.want)
		}
	}

	// Disjoint windows on distinct targets validate fine.
	ok := Scenario{Faults: &FaultPlan{
		Crashes: []CrashWindow{
			{Island: "ixp", Start: time.Second, Duration: time.Second},
			{Island: "x86", Start: time.Second, Duration: time.Second},
			{Island: "ixp", Start: 3 * time.Second, Duration: time.Second},
		},
	}}
	if err := ok.Validate(); err != nil {
		t.Errorf("disjoint windows rejected: %v", err)
	}

	// Compile pre-flights trace materialization: a missing file and an
	// unresolvable class map are errors here, not panics at run time.
	missing := Scenario{Workload: &Workload{Kind: "trace", Path: "/nonexistent/x.wtrace"}}
	if _, err := missing.Compile(); err == nil {
		t.Error("Compile accepted a missing trace file")
	}
	badMap := Scenario{Workload: &Workload{
		Kind: "diurnal", ClassMap: map[string]string{"browse": "NotAType"},
	}}
	if _, err := badMap.Compile(); err == nil || !strings.Contains(err.Error(), "not a RUBiS request type") {
		t.Errorf("Compile of a bad class map: %v", err)
	}
}

// TestParseScenario: the JSON form decodes strictly — typoed knobs are
// errors, not silent defaults.
func TestParseScenario(t *testing.T) {
	good := []byte(`{"name":"x","duration":10000000000,"workload":{"kind":"flash-crowd","rate":20}}`)
	sc, err := ParseScenario(good)
	if err != nil {
		t.Fatalf("ParseScenario: %v", err)
	}
	if sc.Name != "x" || sc.Workload.Kind != "flash-crowd" || sc.Workload.Rate != 20 {
		t.Fatalf("decoded %+v", sc)
	}
	if _, err := ParseScenario([]byte(`{"workload":{"kimd":"flash-crowd"}}`)); err == nil {
		t.Error("ParseScenario accepted an unknown field")
	}
	if _, err := ParseScenario([]byte(`{"workload":{"kind":"mystery"}}`)); err == nil {
		t.Error("ParseScenario accepted an invalid spec")
	}
}

// TestScenarioCatalogCoverage: the catalog stays in sync with the
// generator families — every family appears at least once (diurnal
// appears twice: the clean baseline and the energy-governed variant).
func TestScenarioCatalogCoverage(t *testing.T) {
	seen := make(map[string]int)
	for _, sc := range ScenarioCatalog(20 * time.Second) {
		if err := sc.Validate(); err != nil {
			t.Errorf("catalog scenario %q does not validate: %v", sc.Name, err)
		}
		seen[sc.Workload.Kind]++
	}
	for _, k := range scenario.Kinds() {
		if seen[string(k)] < 1 {
			t.Errorf("generator family %q missing from the catalog", k)
		}
	}
	energized := 0
	for _, sc := range ScenarioCatalog(20 * time.Second) {
		if sc.Energy != nil {
			energized++
		}
	}
	if energized == 0 {
		t.Error("catalog has no energy-governed scenario")
	}
}
