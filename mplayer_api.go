package repro

import (
	"time"

	"repro/internal/mplayer"
	"repro/internal/stats"
)

// MplayerQoSRow is one weight configuration of Figure 6.
type MplayerQoSRow struct {
	Label          string
	Dom1Weight     int
	Dom2Weight     int
	Dom2IXPThreads int
	Dom1FPS        float64 // target: 20
	Dom2FPS        float64 // target: 25
}

// RunMplayerQoS reproduces Figure 6: stream QoS under the three weight
// configurations (256-256 baseline, 384-512 from the stream-property
// policy, 384-640 plus IXP threads).
func RunMplayerQoS(seed int64, duration time.Duration) []MplayerQoSRow {
	cfg := mplayer.QoSConfig{Seed: seed}
	if duration > 0 {
		cfg.Duration = toSim(duration)
	}
	var rows []MplayerQoSRow
	for _, p := range mplayer.RunQoSExperiment(cfg) {
		rows = append(rows, MplayerQoSRow{
			Label:          p.Label,
			Dom1Weight:     p.Dom1Weight,
			Dom2Weight:     p.Dom2Weight,
			Dom2IXPThreads: p.Dom2IXPThreads,
			Dom1FPS:        p.Dom1FPS,
			Dom2FPS:        p.Dom2FPS,
		})
	}
	return rows
}

// SeriesPoint is one sample of a Figure 7 time series.
type SeriesPoint struct {
	Seconds float64
	Value   float64
}

// TriggerRun is one arm (baseline or coordinated) of Figure 7.
type TriggerRun struct {
	Coordinated bool
	Dom1FPS     float64
	Dom2FPS     float64
	Triggers    uint64

	CPUUtil  []SeriesPoint // Dom-1 CPU utilization, percent
	BufferIn []SeriesPoint // IXP buffer occupancy, bytes
}

func seriesPoints(ts *stats.TimeSeries) []SeriesPoint {
	out := make([]SeriesPoint, 0, ts.Len())
	for _, p := range ts.Points() {
		out = append(out, SeriesPoint{Seconds: p.T.Seconds(), Value: p.V})
	}
	return out
}

// RunMplayerTrigger reproduces Figure 7: the bursty UDP stream with and
// without the 128 KB buffer-watermark Trigger coordination.
func RunMplayerTrigger(seed int64, duration time.Duration) (base, coord *TriggerRun) {
	cfg := mplayer.TriggerConfig{Seed: seed}
	if duration > 0 {
		cfg.Duration = toSim(duration)
	}
	conv := func(r *mplayer.TriggerResult) *TriggerRun {
		return &TriggerRun{
			Coordinated: r.Coordinated,
			Dom1FPS:     r.Dom1FPS,
			Dom2FPS:     r.Dom2FPS,
			Triggers:    r.Triggers,
			CPUUtil:     seriesPoints(r.CPUUtil),
			BufferIn:    seriesPoints(r.BufferIn),
		}
	}
	return conv(mplayer.RunTriggerExperiment(cfg, false)),
		conv(mplayer.RunTriggerExperiment(cfg, true))
}

// InterferenceRun is Table 3.
type InterferenceRun struct {
	Dom1BaseFPS, Dom1CoordFPS float64
	Dom2BaseFPS, Dom2CoordFPS float64
	Dom1ChangePct             float64
	Dom2ChangePct             float64
}

// RunMplayerInterference reproduces Table 3: the trigger scheme's effect on
// the streaming VM and on a colocated VM that uses no IXP resources.
func RunMplayerInterference(seed int64, duration time.Duration) *InterferenceRun {
	cfg := mplayer.TriggerConfig{Seed: seed}
	if duration > 0 {
		cfg.Duration = toSim(duration)
	}
	r := mplayer.RunInterferenceExperiment(cfg)
	return &InterferenceRun{
		Dom1BaseFPS:   r.Dom1Base,
		Dom1CoordFPS:  r.Dom1Coord,
		Dom2BaseFPS:   r.Dom2Base,
		Dom2CoordFPS:  r.Dom2Coord,
		Dom1ChangePct: r.Dom1Change,
		Dom2ChangePct: r.Dom2Change,
	}
}
