GO ?= go

.PHONY: all build test race vet lint lint-graph microbench sweep bench fuzz chaos chaos-search overload failover flight scenarios energy check

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

lint: vet
	$(GO) run ./cmd/reprolint ./...

# lint-graph prints the analyzers' deterministic whole-program call graph
# as sorted DOT (pipe to `dot -Tsvg` or diff two revisions byte-for-byte).
lint-graph:
	$(GO) run ./cmd/reprolint -graph ./...

microbench:
	$(GO) test -bench=. -benchmem -run=^$$ . ./internal/flight/ ./internal/sim/ ./internal/energy/

# sweep runs every ablation matrix through the parallel sweep engine with
# the content-hash cache warm across invocations.
sweep:
	$(GO) run ./cmd/reprobench -exp ablation-latency -cache .sweepcache
	$(GO) run ./cmd/reprobench -exp ablation-mechanisms -cache .sweepcache
	$(GO) run ./cmd/reprobench -exp ablation-threshold -cache .sweepcache
	$(GO) run ./cmd/reprobench -exp ablation-interrupt -cache .sweepcache
	$(GO) run ./cmd/reprobench -exp ablation-loss -cache .sweepcache
	$(GO) run ./cmd/reprobench -exp ablation-faults -cache .sweepcache
	$(GO) run ./cmd/reprobench -exp ablation-overload -cache .sweepcache
	$(GO) run ./cmd/reprobench -exp ablation-scenarios -cache .sweepcache
	$(GO) run ./cmd/reprobench -exp ablation-energy -cache .sweepcache

# bench is the regression guard: rerun the pinned sweep and compare against
# the committed BENCH_sweep.json — exact on simulated metrics, ±10% on
# trial throughput. Refresh the baseline with:
#   go run ./cmd/reprobench -exp sweep-bench -json BENCH_sweep.json
bench:
	$(GO) run ./cmd/reprobench -exp sweep-bench -json /tmp/BENCH_sweep.json -baseline BENCH_sweep.json

# fuzz gives the reliability-protocol and fault-plan-generator fuzzers a
# short budget each; CI and local smoke runs share the checked-in corpus
# under testdata.
fuzz:
	$(GO) test -run FuzzReliableEndpoint -fuzz FuzzReliableEndpoint -fuzztime 30s ./internal/core/
	$(GO) test -run FuzzFaultPlanGen -fuzz FuzzFaultPlanGen -fuzztime 30s ./internal/chaos/

# chaos runs the fault-injection suites: the root RUBiS chaos tests plus
# the coordination-plane protocol tests under the race detector.
chaos:
	$(GO) test -run 'TestChaos' .
	$(GO) test -race ./internal/core/... ./internal/pcie/... ./internal/sweep/...

# chaos-search pins the property-guided search plane: the generator/
# shrinker/search engine under the race detector, the root acceptance
# tests (worker-count determinism, planted-violation shrinking, corruption
# containment), a small fixed-budget seeded search via the CLI, and a
# replay of every committed corpus entry — each testdata/chaos/*.json
# must still pass its oracle. See docs/chaos-search.md.
chaos-search:
	$(GO) test -race ./internal/chaos/
	$(GO) test -run 'TestChaosSearchDeterminism|TestChaosShrinkPlantedViolation|TestChaosCorruptionContainment|TestChaosCorpusReplay' .
	$(GO) run ./cmd/reprochaos search -seed 1 -budget 4 -duration 8s -warmup 2s
	$(GO) run ./cmd/reprochaos replay testdata/chaos/*.json

# failover pins the controller-availability contract under the race
# detector: a mid-run primary crash costs at most the election bound
# (TestChaosControllerCrash), a failover run record/replays
# byte-identically, the failover matrix is deterministic across sweep
# worker counts, and the replication/checkpoint/bounded-buffer unit
# layer holds.
failover:
	$(GO) test -race -run 'TestChaosControllerCrash|TestChaosFailoverReplay|TestFailoverMatrixParallelDeterminism' .
	$(GO) test -race -run 'TestFailover|TestCheckpoint|TestSnapshotRestore|TestReliableOutstandingBounded|TestReliableReorderBufferBounded|TestReliableFlushStale|TestWatchdogFlapHysteresis' ./internal/core/

# overload exercises the overload-control plane: the admission/breaker
# unit+property tests under the race detector, the overload chaos suites,
# and the quick ablation matrix (simulated metrics are machine-independent,
# so no wall-clock comparison is involved).
overload:
	$(GO) test -race ./internal/overload/
	$(GO) test -run 'TestChaosOverload|TestBoundedQueues|TestCoordinatedOverload' . ./internal/rubis/
	$(GO) run ./cmd/reprobench -exp ablation-overload -quick

# flight exercises the flight recorder end-to-end on a short saturated
# RUBiS run: record the log, replay it (divergence fails the target),
# re-record it, diff the two recordings byte-for-event, then give the
# format decoder a short fuzz budget over the checked-in corpus.
flight:
	$(GO) run ./cmd/reproflight record -o /tmp/ci.flight -seed 7 -duration 10s -warmup 2s -load 3 -overload
	$(GO) run ./cmd/reproflight replay /tmp/ci.flight
	$(GO) run ./cmd/reproflight record -o /tmp/ci2.flight -seed 7 -duration 10s -warmup 2s -load 3 -overload
	$(GO) run ./cmd/reproflight diff /tmp/ci.flight /tmp/ci2.flight
	$(GO) run ./cmd/reproflight inspect /tmp/ci.flight
	$(GO) test -run FuzzFlightDecoder -fuzz FuzzFlightDecoder -fuzztime 10s ./internal/flight/

# scenarios runs the trace-driven workload conformance suite under the
# race detector: the .wtrace format golden/round-trip/fuzz-seed tests,
# the generator property tests, the trace-driven client, scenario
# validation, worker-count determinism of the scenario matrix, and
# flight record/replay of a trace-driven run — then smokes the reproscn
# CLI end to end (generate must be deterministic: diff exits 1 on any
# divergence between two same-seed traces).
scenarios:
	$(GO) test -race ./internal/scenario/
	$(GO) test -race -run 'TestResolveTrace|TestTrace|TestScaleTraceTimes' ./internal/rubis/
	$(GO) test -race -run 'TestScenario|TestParseScenario' .
	$(GO) run ./cmd/reproscn generate -kind flash-crowd -o /tmp/ci-a.wtrace -duration 20s -seed 7
	$(GO) run ./cmd/reproscn generate -kind flash-crowd -o /tmp/ci-b.wtrace -duration 20s -seed 7
	$(GO) run ./cmd/reproscn diff /tmp/ci-a.wtrace /tmp/ci-b.wtrace
	$(GO) run ./cmd/reproscn inspect /tmp/ci-a.wtrace

# energy pins the energy subsystem's contracts under the race detector:
# the DVFS/meter/governor unit and property layer, the energy-matrix
# worker-count determinism and flight record/replay acceptance tests, the
# conservation and power-cap oracles, and the quick energy ablation —
# whose headline line asserts coordinated ≥10% fewer joules than ondemand
# at equal QoS at the calibrated 1x load.
energy:
	$(GO) test -race ./internal/energy/
	$(GO) test -race -run 'TestEnergy|TestPowerCap' .
	$(GO) run ./cmd/reprobench -exp ablation-energy -quick

# check is the full tier-1 gate: what CI runs on every push.
check: build test lint
