GO ?= go

.PHONY: all build test race vet lint bench chaos check

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

lint: vet
	$(GO) run ./cmd/reprolint ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# chaos runs the fault-injection suites: the root RUBiS chaos tests plus
# the coordination-plane protocol tests under the race detector.
chaos:
	$(GO) test -run 'TestChaos' .
	$(GO) test -race ./internal/core/... ./internal/pcie/...

# check is the full tier-1 gate: what CI runs on every push.
check: build test lint
