GO ?= go

.PHONY: all build test race vet lint bench check

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

lint: vet
	$(GO) run ./cmd/reprolint ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# check is the full tier-1 gate: what CI runs on every push.
check: build test lint
