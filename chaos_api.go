package repro

import (
	"bytes"
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/chaos"
	"repro/internal/sweep"
)

// This file is the public face of the chaos search plane: property-guided
// exploration of the fault-plan space with invariant oracles and automatic
// shrinking. The generic engine lives in internal/chaos; this file wires
// it to real RUBiS runs, the CheckInvariants oracle catalog, and the
// scenario DSL (minimized repros are emitted as ordinary Scenarios, so
// `reproscn` and the corpus tooling can replay them). See
// docs/chaos-search.md and cmd/reprochaos.

// ChaosSearchOptions shapes one chaos search. Zero values take the
// defaults noted on each field.
type ChaosSearchOptions struct {
	// Seed drives the trial generator (default 1).
	Seed int64
	// Budget is the number of generated trials (default 16).
	Budget int
	// Workers sizes the sweep pool (default NumCPU); the result is
	// byte-identical for every worker count.
	Workers int

	// Duration and Warmup shape each trial run (defaults 16s / 4s —
	// deliberately short: a search runs dozens of full experiments).
	Duration time.Duration
	Warmup   time.Duration

	// Loads, Kinds, MaxWindows, and MaxReplicas shape the sample space
	// (see chaos.GenConfig for the defaults).
	Loads       []float64
	Kinds       []string
	MaxWindows  int
	MaxReplicas int

	// MaxFindings bounds how many violating trials are shrunk (default 3).
	MaxFindings int
	// MaxShrinkTrials caps candidate runs per shrink (default 48; each
	// candidate is a full coordinated+baseline experiment).
	MaxShrinkTrials int

	// Replay arms the record->replay oracle on every trial (one extra
	// replay pass per run).
	Replay bool

	// CacheDir, when set, memoizes trial outcomes on disk so repeated
	// searches skip already-judged specs.
	CacheDir string

	// Progress, when non-nil, observes trial completion.
	Progress func(done, total int)
}

func (o ChaosSearchOptions) normalized() ChaosSearchOptions {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Budget <= 0 {
		o.Budget = 16
	}
	if o.Duration <= 0 {
		o.Duration = 16 * time.Second
	}
	if o.Warmup <= 0 {
		o.Warmup = 4 * time.Second
	}
	if o.MaxShrinkTrials <= 0 {
		o.MaxShrinkTrials = 48
	}
	return o
}

// ChaosFinding is one minimized violation, expressed as runnable
// scenarios.
type ChaosFinding struct {
	// Oracle is the invariant the trial broke.
	Oracle string `json:"oracle"`
	Detail string `json:"detail,omitempty"`
	// Trial is the original generated scenario; Minimized is the shrunk
	// repro, still violating Oracle with strictly fewer ingredients
	// (unless Trial was already minimal).
	Trial     Scenario `json:"trial"`
	Minimized Scenario `json:"minimized"`
	// ShrinkSteps counts accepted removals; ShrinkTrials all candidate
	// experiments the shrinker spent.
	ShrinkSteps  int `json:"shrink_steps"`
	ShrinkTrials int `json:"shrink_trials"`
}

// ChaosSearchResult is the outcome of one chaos search.
type ChaosSearchResult struct {
	Seed      int64          `json:"seed"`
	Trials    int            `json:"trials"`
	Violating int            `json:"violating"`
	Findings  []ChaosFinding `json:"findings,omitempty"`
}

// chaosTemplate is the run shape every generated trial starts from: the
// coordinated reliable plane, judged against a local baseline.
func chaosTemplate(o ChaosSearchOptions) Scenario {
	return Scenario{
		Duration:    o.Duration,
		Warmup:      o.Warmup,
		Coordinated: true,
		Robust:      true,
	}
}

// chaosApplySpec overlays an engine spec's shrinkable ingredients onto a
// template scenario, preserving everything the shrinker does not touch
// (robustness, durations, tuned overload knobs). Template and spec
// round-trip: scenarioChaosSpec(chaosApplySpec(tmpl, spec)) == spec.
func chaosApplySpec(tmpl Scenario, spec chaos.TrialSpec) Scenario {
	s := tmpl
	s.Name = spec.Name
	s.Seed = spec.Seed
	s.Faults = fromInternalPlan(spec.Plan)
	s.LoadFactor = spec.Load
	if spec.Load > 1 && s.RequestTimeout == 0 {
		s.RequestTimeout = overloadStressTimeout
	}
	switch {
	case !spec.Overload:
		s.Overload = nil
	case s.Overload == nil:
		ov := overloadStressKnobs()
		ov.Coordinated = true
		s.Overload = &ov
	}
	switch {
	case spec.Replicas <= 1:
		s.Failover = nil
	default:
		f := FailoverControl{Replicas: spec.Replicas}
		if s.Failover != nil {
			f = *s.Failover
			f.Replicas = spec.Replicas
		}
		s.Failover = &f
	}
	switch {
	case spec.Kind == "" || spec.Kind == "sessions":
		if s.Workload != nil && !s.Workload.closedLoop() {
			s.Workload = nil
		}
	case s.Workload == nil || s.Workload.Kind != spec.Kind:
		s.Workload = &Workload{Kind: spec.Kind}
	}
	return s
}

// scenarioChaosSpec projects a scenario onto the engine's spec — the
// shrinkable ingredient list.
func scenarioChaosSpec(s Scenario) chaos.TrialSpec {
	spec := chaos.TrialSpec{
		Name:     s.Name,
		Seed:     s.Seed,
		Load:     s.LoadFactor,
		Overload: s.Overload != nil,
	}
	if s.Workload != nil {
		spec.Kind = s.Workload.Kind
	}
	if s.Failover != nil {
		spec.Replicas = s.Failover.Replicas
	}
	if s.Faults != nil {
		spec.Plan = *s.Faults.internal()
	}
	return spec
}

// runChaosJudged compiles and runs the scenario on the coordinated plane,
// runs the local-only baseline under the same fault plan (shorn of
// controller-replica machinery, which only exists when coordinating), and
// returns the bundle the oracles judge. When replay is set the
// coordinated run is recorded and replayed for the zero-divergence
// oracle.
func runChaosJudged(s Scenario, replay bool) (ChaosRun, error) {
	cfg, err := s.Compile()
	if err != nil {
		return ChaosRun{}, err
	}
	cr := ChaosRun{Config: cfg, Coordinated: true}
	if replay {
		var log bytes.Buffer
		run, err := RecordRubis(cfg, true, &log)
		if err != nil {
			return ChaosRun{}, err
		}
		rep, err := ReplayRubis(log.Bytes())
		if err != nil {
			return ChaosRun{}, err
		}
		cr.Run, cr.Replay = run, rep
	} else {
		cr.Run = RunRubis(cfg, true)
	}

	base := cfg
	base.Failover = nil
	if base.Faults != nil {
		fp := *base.Faults
		fp.ControllerCrashes = nil
		fp.ControllerPartitions = nil
		base.Faults = &fp
	}
	if base.Overload != nil {
		ov := *base.Overload
		ov.Coordinated = false
		base.Overload = &ov
	}
	cr.Baseline = RunRubis(base, false)
	return cr, nil
}

// chaosRunner adapts the judged run to the engine's Runner contract.
func chaosRunner(tmpl Scenario, replay bool) chaos.Runner {
	return func(spec chaos.TrialSpec) (chaos.Result, error) {
		cr, err := runChaosJudged(chaosApplySpec(tmpl, spec), replay)
		if err != nil {
			return chaos.Result{}, err
		}
		var res chaos.Result
		for _, v := range FailedOracles(CheckInvariants(cr)) {
			res.Violations = append(res.Violations, chaos.Violation{Oracle: v.Oracle, Detail: v.Detail})
		}
		return res, nil
	}
}

// RunChaosSearch samples Budget random fault plans crossed with load
// levels and workload kinds, runs each through the sweep engine, judges
// every outcome with the invariant-oracle catalog, and shrinks each
// violation to a minimal repro. The result is a pure function of the
// options: same seed and budget yield byte-identical results for any
// worker count.
func RunChaosSearch(o ChaosSearchOptions) (*ChaosSearchResult, error) {
	o = o.normalized()
	copts := chaos.Options{
		Seed:    o.Seed,
		Budget:  o.Budget,
		Workers: o.Workers,
		Gen: chaos.GenConfig{
			Duration:    toSim(o.Duration),
			WindowStart: toSim(o.Warmup),
			MaxWindows:  o.MaxWindows,
			MaxReplicas: o.MaxReplicas,
			Loads:       o.Loads,
			Kinds:       o.Kinds,
		},
		MaxFindings:     o.MaxFindings,
		MaxShrinkTrials: o.MaxShrinkTrials,
		CacheVersion:    "chaos-v1",
	}
	if o.CacheDir != "" {
		c, err := sweep.OpenCache(o.CacheDir)
		if err != nil {
			return nil, err
		}
		copts.Cache = c
	}
	if o.Progress != nil {
		copts.Progress = func(p sweep.Progress) { o.Progress(p.Done, p.Total) }
	}

	tmpl := chaosTemplate(o)
	res, err := chaos.Search(chaosRunner(tmpl, o.Replay), copts)
	if err != nil {
		return nil, err
	}
	out := &ChaosSearchResult{Seed: o.Seed, Trials: res.Trials, Violating: res.Violating}
	for _, f := range res.Findings {
		out.Findings = append(out.Findings, ChaosFinding{
			Oracle:       f.Oracle,
			Detail:       f.Detail,
			Trial:        chaosApplySpec(tmpl, f.Spec),
			Minimized:    chaosApplySpec(tmpl, f.Minimized),
			ShrinkSteps:  f.ShrinkSteps,
			ShrinkTrials: f.ShrinkTrials,
		})
	}
	return out, nil
}

// ShrinkChaosScenario minimizes a scenario known to violate oracle: each
// candidate removes one fault ingredient and is kept only if re-running
// it still violates the same oracle. It returns the minimized scenario
// plus the accepted-step and trial counts. maxTrials caps the candidate
// experiments (0 means 48).
func ShrinkChaosScenario(s Scenario, oracle string, maxTrials int) (Scenario, int, int, error) {
	if maxTrials <= 0 {
		maxTrials = 48
	}
	spec := scenarioChaosSpec(s)
	run := chaosRunner(s, false)
	// Pre-flight: the input must actually violate the oracle, otherwise
	// "minimal" is meaningless.
	res, err := run(spec)
	if err != nil {
		return Scenario{}, 0, 0, err
	}
	found := false
	for _, v := range res.Violations {
		if v.Oracle == oracle {
			found = true
		}
	}
	if !found {
		return Scenario{}, 0, 0, fmt.Errorf("repro: scenario %q does not violate oracle %q", s.Name, oracle)
	}
	shr, err := chaos.Shrink(run, spec, oracle, maxTrials)
	if err != nil {
		return Scenario{}, 0, 0, err
	}
	return chaosApplySpec(s, shr.Spec), len(shr.Steps), shr.Trials + 1, nil
}

// ChaosRepro is the corpus interchange format: a minimized scenario plus
// the oracle it once violated and where it came from. Committed corpus
// entries must replay clean — they document defenses that now hold, and
// CI re-judges them on every run.
type ChaosRepro struct {
	// Oracle is the invariant this repro stresses (and once violated).
	Oracle string `json:"oracle"`
	// Detail describes the original violation and what fixed it.
	Detail string `json:"detail,omitempty"`
	// Found records provenance (search seed, date, or by-hand note).
	Found string `json:"found,omitempty"`
	// Scenario is the minimized, runnable repro.
	Scenario Scenario `json:"scenario"`
}

// ParseChaosRepro decodes a corpus entry, rejecting unknown fields so
// typos in hand-edited repros surface as errors.
func ParseChaosRepro(data []byte) (ChaosRepro, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var r ChaosRepro
	if err := dec.Decode(&r); err != nil {
		return ChaosRepro{}, fmt.Errorf("repro: parsing chaos repro: %w", err)
	}
	if r.Oracle == "" {
		return ChaosRepro{}, fmt.Errorf("repro: chaos repro %q names no oracle", r.Scenario.Name)
	}
	known := false
	for _, o := range ChaosOracles() {
		if o == r.Oracle {
			known = true
		}
	}
	if !known {
		return ChaosRepro{}, fmt.Errorf("repro: chaos repro %q names unknown oracle %q", r.Scenario.Name, r.Oracle)
	}
	if err := r.Scenario.Validate(); err != nil {
		return ChaosRepro{}, err
	}
	return r, nil
}

// ReplayChaosRepro re-runs a corpus entry and returns the full verdict
// list (record->replay divergence included). A committed repro passes
// when no verdict is a violation.
func ReplayChaosRepro(r ChaosRepro) ([]OracleVerdict, error) {
	cr, err := runChaosJudged(r.Scenario, true)
	if err != nil {
		return nil, err
	}
	return CheckInvariants(cr), nil
}
