package repro

// Chaos-search tests: the property-guided search plane must itself be
// deterministic (same seed and budget, byte-identical results for any
// worker count), its shrinker must reduce a planted violation to a
// strictly smaller repro that still violates the same oracle, corruption
// injection must degrade and never misactuate, and every committed corpus
// entry must replay clean against the full oracle catalog.

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

// TestChaosSearchDeterminism runs the same small fixed-budget search with
// one worker and with eight and requires byte-identical JSON, findings
// included — the acceptance contract for running searches under the
// content-hash cache and across machines.
func TestChaosSearchDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("long integration test")
	}
	run := func(workers int) []byte {
		res, err := RunChaosSearch(ChaosSearchOptions{
			Seed: 5, Budget: 4, Workers: workers,
			Duration: 8 * time.Second, Warmup: 2 * time.Second,
			MaxShrinkTrials: 6,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		blob, err := json.Marshal(res)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return blob
	}
	seq, par := run(1), run(8)
	if string(seq) != string(par) {
		t.Fatalf("search diverged across worker counts:\nworkers=1: %s\nworkers=8: %s", seq, par)
	}
}

// plantedDupScenario is a hand-planted at-most-once violation: on the
// fragile plane (Robust off) duplicated Tunes are applied twice, and the
// reorder rate, spike rate, and partition window are red herrings the
// shrinker must strip (non-dropping faults, so they cannot mask the
// double-apply the way loss would).
func plantedDupScenario() Scenario {
	return Scenario{
		Name: "planted-fragile-dup", Seed: 1,
		Duration: 16 * time.Second, Warmup: 4 * time.Second,
		Coordinated: true,
		Faults: &FaultPlan{
			DupRate:     0.3,
			ReorderRate: 0.2,
			SpikeRate:   0.1,
			Partitions: []Partition{
				{Start: 6 * time.Second, Duration: 2 * time.Second},
			},
		},
	}
}

// TestChaosShrinkPlantedViolation shrinks the planted violation and
// requires a strictly smaller repro that still violates the same oracle:
// duplication alone explains the double-apply, so the reorder and spike
// rates and the partition must all be stripped.
func TestChaosShrinkPlantedViolation(t *testing.T) {
	if testing.Short() {
		t.Skip("long integration test")
	}
	s := plantedDupScenario()
	min, steps, trials, err := ShrinkChaosScenario(s, OracleAtMostOnce, 32)
	if err != nil {
		t.Fatal(err)
	}
	if steps < 3 {
		t.Errorf("shrinker accepted %d removals, want >= 3 (reorder, spike, and partition are red herrings)", steps)
	}
	if trials <= steps {
		t.Errorf("shrink spent %d trials for %d accepted steps; rejected candidates were never re-run", trials, steps)
	}
	fp := min.Faults
	if fp == nil || fp.DupRate == 0 {
		t.Fatalf("minimized repro lost the duplication that causes the violation: %+v", fp)
	}
	if fp.ReorderRate != 0 || fp.SpikeRate != 0 || len(fp.Partitions) != 0 {
		t.Errorf("minimized repro kept red herrings: reorder=%g spike=%g partitions=%d",
			fp.ReorderRate, fp.SpikeRate, len(fp.Partitions))
	}
	// Soundness: the minimized scenario still violates the same oracle.
	cr, err := runChaosJudged(min, false)
	if err != nil {
		t.Fatal(err)
	}
	violated := false
	for _, v := range FailedOracles(CheckInvariants(cr)) {
		if v.Oracle == OracleAtMostOnce {
			violated = true
		}
	}
	if !violated {
		t.Error("minimized repro no longer violates at-most-once")
	}
}

// TestChaosCorruptionContainment drives a nonzero corruption rate through
// both planes and requires degradation without misactuation: every
// corrupted frame that arrives is checksum-dropped, on the fragile plane
// just as on the reliable one, and the run stays deterministic.
func TestChaosCorruptionContainment(t *testing.T) {
	if testing.Short() {
		t.Skip("long integration test")
	}
	for _, robust := range []bool{false, true} {
		name := "fragile"
		if robust {
			name = "robust"
		}
		t.Run(name, func(t *testing.T) {
			cfg := RubisConfig{
				Seed: 3, Duration: 16 * time.Second, Warmup: 4 * time.Second,
				Robust: robust,
				Faults: &FaultPlan{CorruptRate: 0.25},
			}
			r := RunRubis(cfg, true)
			rb := r.Robustness
			if rb.Corrupted == 0 || rb.CorruptArrived == 0 {
				t.Fatalf("corruption never exercised: injected=%d arrived=%d", rb.Corrupted, rb.CorruptArrived)
			}
			requireInvariants(t, ChaosRun{Config: cfg, Coordinated: true, Run: r})
			if again := RunRubis(cfg, true); !reflect.DeepEqual(r, again) {
				t.Error("identical corrupted runs diverged")
			}
		})
	}
}

// TestChaosCorpusReplay re-judges every committed minimized repro: corpus
// entries document defenses that now hold, so each must pass the full
// oracle catalog (record->replay divergence included).
func TestChaosCorpusReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("long integration test")
	}
	paths, err := filepath.Glob(filepath.Join("testdata", "chaos", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no committed chaos corpus entries under testdata/chaos/")
	}
	for _, path := range paths {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := ParseChaosRepro(data)
			if err != nil {
				t.Fatal(err)
			}
			verdicts, err := ReplayChaosRepro(rep)
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range FailedOracles(verdicts) {
				t.Errorf("oracle %s violated: %s", v.Oracle, v.Detail)
			}
			// The entry's named oracle must actually have been judged, not
			// skipped — a corpus repro that no longer arms its own invariant
			// is dead weight.
			for _, v := range verdicts {
				if v.Oracle == rep.Oracle && v.Skipped {
					t.Errorf("entry's oracle %s was skipped: %s", v.Oracle, v.Detail)
				}
			}
		})
	}
}
