// Command reproflight records, replays, inspects, and diffs coordination
// flight logs (.flight files, see docs/flightrecorder.md).
//
// Usage:
//
//	reproflight record -o run.flight [-seed N] [-duration 30s] [-warmup 5s]
//	                   [-load 3] [-coordinated] [-overload]
//	reproflight replay run.flight
//	reproflight inspect [-n N] run.flight
//	reproflight diff a.flight b.flight
//
// record runs one RUBiS experiment with the recorder armed and writes the
// log. replay re-runs the simulation from the log's embedded config+seed
// and verifies the live event stream against the recording, exiting 1 on
// the first divergence. inspect prints the log's header and per-category
// statistics (-n additionally dumps the first N events). diff compares two
// logs event-by-event, exiting 1 if they differ.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro"
	"repro/internal/flight"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "record":
		record(os.Args[2:])
	case "replay":
		replay(os.Args[2:])
	case "inspect":
		inspect(os.Args[2:])
	case "diff":
		diff(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: reproflight record|replay|inspect|diff [flags] [files]")
	os.Exit(2)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "reproflight:", err)
	os.Exit(1)
}

func record(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	out := fs.String("o", "run.flight", "output flight-log file")
	seed := fs.Int64("seed", 1, "simulation seed")
	duration := fs.Duration("duration", 30*time.Second, "simulated run length")
	warmup := fs.Duration("warmup", 5*time.Second, "measurement warmup")
	load := fs.Float64("load", 0, "session load factor (>2 saturates; 0 = calibrated)")
	coordinated := fs.Bool("coordinated", true, "enable the coordination plane")
	overload := fs.Bool("overload", false, "arm the coordinated overload-control plane")
	fs.Parse(args)

	cfg := repro.RubisConfig{
		Seed:     *seed,
		Duration: *duration,
		Warmup:   *warmup,
	}
	if *load > 0 {
		cfg.LoadFactor = *load
		cfg.RequestTimeout = 2 * time.Second
	}
	if *overload {
		cfg.Overload = &repro.OverloadControl{Coordinated: *coordinated}
	}
	f, err := os.Create(*out)
	if err != nil {
		fail(err)
	}
	run, err := repro.RecordRubis(cfg, *coordinated, f)
	if err != nil {
		f.Close()
		fail(err)
	}
	if err := f.Close(); err != nil {
		fail(err)
	}
	st, err := os.Stat(*out)
	if err != nil {
		fail(err)
	}
	fmt.Printf("recorded %s: seed=%d duration=%v throughput=%.1f req/s (%d bytes)\n",
		*out, *seed, *duration, run.Throughput, st.Size())
}

func replay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	data, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		fail(err)
	}
	rep, err := repro.ReplayRubis(data)
	if err != nil {
		fail(err)
	}
	if d := rep.Divergence; d != nil {
		fmt.Println(d)
		os.Exit(1)
	}
	fmt.Printf("replay matched: %d events reproduced (seed=%d, coordinated=%v)\n",
		rep.Events, rep.Meta.Config.Seed, rep.Meta.Coordinated)
}

func inspect(args []string) {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	dump := fs.Int("n", 0, "also dump the first N events")
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	log := mustDecode(fs.Arg(0))
	info := log.Info()
	fmt.Printf("%s: format v%d, seed=%d\n", fs.Arg(0), info.Version, info.Seed)
	fmt.Printf("  %d events in %d bytes (%.2f bytes/event), t=%.6fs..%.6fs\n",
		info.Events, info.Bytes, info.BytesPerEvent, info.First.Seconds(), info.Last.Seconds())
	fmt.Printf("  meta: %s\n", info.Meta)
	for _, c := range info.Categories {
		fmt.Printf("  %-8s %8d\n", "["+c.Category.String()+"]", c.Count)
	}
	fmt.Printf("  %d distinct labels\n", len(info.Labels))
	for i, ev := range log.Events {
		if i >= *dump {
			break
		}
		fmt.Println("  " + ev.String())
	}
}

func diff(args []string) {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 2 {
		usage()
	}
	a, b := mustDecode(fs.Arg(0)), mustDecode(fs.Arg(1))
	d := flight.Diff(a, b)
	fmt.Println(d)
	if !d.Identical() {
		os.Exit(1)
	}
}

func mustDecode(path string) *flight.Log {
	data, err := os.ReadFile(path)
	if err != nil {
		fail(err)
	}
	log, err := flight.Decode(data)
	if err != nil {
		fail(fmt.Errorf("%s: %w", path, err))
	}
	return log
}
