// Command coordscale explores the scalability of the coordination
// mechanisms to large many-core platforms — the paper's stated ongoing
// work: a star topology through a central controller versus direct
// (distributed) island-to-island coordination.
//
// Usage:
//
//	coordscale [-rate 200] [-hop 150us] [-hub 5us] [-duration 10s] [-seed N]
//	           [-workers N] [-reps N]
//
// Points fan out across a worker pool (-workers, default GOMAXPROCS) with
// results identical for any worker count; -reps repeats each point on
// derived seed substreams and reports mean ± 95% CI.
package main

import (
	"flag"
	"fmt"
	"time"

	"repro"
)

func main() {
	rate := flag.Float64("rate", 200, "coordination messages/s per island")
	hop := flag.Duration("hop", 150*time.Microsecond, "per-hop transport latency")
	hub := flag.Duration("hub", 50*time.Microsecond, "central controller per-message cost")
	duration := flag.Duration("duration", 10*time.Second, "simulated time per point")
	seed := flag.Int64("seed", 1, "simulation seed")
	workers := flag.Int("workers", 0, "sweep worker-pool size (0 = GOMAXPROCS)")
	reps := flag.Int("reps", 1, "repetitions per point (mean ± 95% CI)")
	flag.Parse()

	points := repro.RunCoordScalability(repro.ScalabilityConfig{
		Seed:          *seed,
		RatePerIsland: *rate,
		HopLatency:    *hop,
		HubCost:       *hub,
		Duration:      *duration,
		Workers:       *workers,
		Reps:          *reps,
	})
	fmt.Print(repro.FormatScalability(points))
}
