// Command coordscale explores the scalability of the coordination
// mechanisms to large many-core platforms — the paper's stated ongoing
// work: a star topology through a central controller versus direct
// (distributed) island-to-island coordination.
//
// Usage:
//
//	coordscale [-rate 200] [-hop 150us] [-hub 5us] [-duration 10s] [-seed N]
package main

import (
	"flag"
	"fmt"
	"time"

	"repro"
)

func main() {
	rate := flag.Float64("rate", 200, "coordination messages/s per island")
	hop := flag.Duration("hop", 150*time.Microsecond, "per-hop transport latency")
	hub := flag.Duration("hub", 50*time.Microsecond, "central controller per-message cost")
	duration := flag.Duration("duration", 10*time.Second, "simulated time per point")
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Parse()

	points := repro.RunCoordScalability(repro.ScalabilityConfig{
		Seed:          *seed,
		RatePerIsland: *rate,
		HopLatency:    *hop,
		HubCost:       *hub,
		Duration:      *duration,
	})
	fmt.Print(repro.FormatScalability(points))
}
