// Command reproscn generates, inspects, runs, and diffs declarative
// workload scenarios and their .wtrace files (see docs/scenarios.md).
//
// Usage:
//
//	reproscn generate -kind flash-crowd -o x.wtrace [-duration 30s]
//	                  [-rate 40] [-seed N]
//	reproscn inspect [-n N] x.wtrace
//	reproscn run [-coordinated] [-seed N] scenario.json
//	reproscn diff a.wtrace b.wtrace
//
// generate synthesizes a deterministic trace from one of the generator
// families (flash-crowd, diurnal, heavy-tail, ml-serving, kv-tier) and
// writes it. inspect prints a trace's header, span, and per-class
// counts (-n additionally dumps the first N requests). run parses a
// JSON scenario spec strictly, compiles it, runs it, and prints the
// run's headline metrics. diff compares two traces request-by-request,
// exiting 1 if they differ.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro"
	"repro/internal/scenario"
	"repro/internal/sim"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "generate":
		generate(os.Args[2:])
	case "inspect":
		inspect(os.Args[2:])
	case "run":
		run(os.Args[2:])
	case "diff":
		diff(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: reproscn generate|inspect|run|diff [flags] [files]")
	os.Exit(2)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "reproscn:", err)
	os.Exit(1)
}

func generate(args []string) {
	fs := flag.NewFlagSet("generate", flag.ExitOnError)
	kind := fs.String("kind", "flash-crowd", "generator family: flash-crowd, diurnal, heavy-tail, ml-serving, kv-tier")
	out := fs.String("o", "", "output .wtrace file (default <kind>.wtrace)")
	duration := fs.Duration("duration", 30*time.Second, "trace span")
	rate := fs.Float64("rate", 0, "mean arrival rate, requests/second (0 = family default)")
	seed := fs.Int64("seed", 1, "generator seed")
	fs.Parse(args)

	tr, err := scenario.Generate(scenario.GenSpec{
		Kind:     scenario.Kind(*kind),
		Duration: sim.FromDuration(*duration),
		Rate:     *rate,
		Seed:     *seed,
	})
	if err != nil {
		fail(err)
	}
	path := *out
	if path == "" {
		path = *kind + ".wtrace"
	}
	if err := tr.WriteFile(path); err != nil {
		fail(err)
	}
	info := mustRead(path).Info()
	fmt.Printf("generated %s: %d requests, %d sessions in %d bytes\n",
		path, info.Reqs, info.Sessions, info.Bytes)
}

func inspect(args []string) {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	dump := fs.Int("n", 0, "also dump the first N requests")
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	tr := mustRead(fs.Arg(0))
	info := tr.Info()
	fmt.Printf("%s: format v%d, seed=%d\n", fs.Arg(0), info.Version, info.Seed)
	fmt.Printf("  %d requests, %d sessions in %d bytes (%.2f bytes/req), t=%.6fs..%.6fs\n",
		info.Reqs, info.Sessions, info.Bytes, info.BytesPerReq,
		info.First.Seconds(), info.Last.Seconds())
	if len(info.Meta) > 0 {
		fmt.Printf("  meta: %s\n", info.Meta)
	}
	for _, c := range info.Classes {
		fmt.Printf("  %-24s %8d\n", c.Class, c.Count)
	}
	for i, r := range tr.Reqs {
		if i >= *dump {
			break
		}
		fmt.Printf("  %.6fs %s session=%d size=%d\n", r.T.Seconds(), r.Class, r.Session, r.Size)
	}
}

func run(args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	coordinated := fs.Bool("coordinated", false, "force the coordinated plane on")
	seed := fs.Int64("seed", 0, "override the scenario seed")
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	data, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		fail(err)
	}
	sc, err := repro.ParseScenario(data)
	if err != nil {
		fail(err)
	}
	if *coordinated {
		sc.Coordinated = true
	}
	if *seed != 0 {
		sc.Seed = *seed
	}
	r, err := repro.RunScenario(sc)
	if err != nil {
		fail(err)
	}
	plane := "base"
	if sc.Coordinated {
		plane = "coordinated"
	}
	fmt.Printf("%s (%s): %.1f req/s, mean %.1f ms, %d sessions\n",
		sc.Name, plane, r.Throughput, r.MeanOverTypes(), r.SessionsCompleted)
	ov := r.Overload
	if shed := ov.QueueShed + ov.Expired + ov.IXPShed; shed > 0 || ov.Abandoned > 0 {
		fmt.Printf("  overload: shed=%d abandoned=%d served-p95=%.1fms\n",
			shed, ov.Abandoned, ov.ServedP95Ms)
	}
	if rb := r.Robustness; rb.Retransmits > 0 || rb.FaultDrops > 0 {
		fmt.Printf("  faults: dropped=%d retransmits=%d degradations=%d\n",
			rb.FaultDrops, rb.Retransmits, rb.Degradations)
	}
}

func diff(args []string) {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 2 {
		usage()
	}
	a, b := mustRead(fs.Arg(0)), mustRead(fs.Arg(1))
	if a.Seed != b.Seed {
		fmt.Printf("seeds differ: %d vs %d\n", a.Seed, b.Seed)
		os.Exit(1)
	}
	n := len(a.Reqs)
	if len(b.Reqs) < n {
		n = len(b.Reqs)
	}
	for i := 0; i < n; i++ {
		if a.Reqs[i] != b.Reqs[i] {
			fmt.Printf("request %d differs: %+v vs %+v\n", i, a.Reqs[i], b.Reqs[i])
			os.Exit(1)
		}
	}
	if len(a.Reqs) != len(b.Reqs) {
		fmt.Printf("request counts differ: %d vs %d\n", len(a.Reqs), len(b.Reqs))
		os.Exit(1)
	}
	fmt.Printf("traces identical: %d requests\n", len(a.Reqs))
}

func mustRead(path string) *scenario.Trace {
	tr, err := scenario.ReadFile(path)
	if err != nil {
		fail(err)
	}
	return tr
}
