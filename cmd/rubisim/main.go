// Command rubisim runs a single RUBiS experiment on the two-island testbed
// and prints the full per-request-type breakdown, Table 2 metrics, and the
// coordination plane's activity.
//
// Usage:
//
//	rubisim [-coord] [-scheme outstanding|loadtrack|class] [-sessions N]
//	        [-duration 130s] [-latency 150us] [-mix bid|browsing] [-seed N]
package main

import (
	"flag"
	"fmt"
	"time"

	"repro"
)

func main() {
	coord := flag.Bool("coord", false, "enable the coord-ixp-dom0 scheme")
	scheme := flag.String("scheme", "outstanding", "coordination policy variant")
	sessions := flag.Int("sessions", 0, "concurrent client sessions (0 = default 80)")
	duration := flag.Duration("duration", 130*time.Second, "simulated run length")
	latency := flag.Duration("latency", 0, "coordination channel one-way latency (0 = default 150us)")
	mix := flag.String("mix", "bid", "workload mix: bid (read-write) or browsing (read-only)")
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Parse()

	cfg := repro.RubisConfig{
		Seed:         *seed,
		Duration:     *duration,
		Scheme:       repro.CoordScheme(*scheme),
		CoordLatency: *latency,
		Sessions:     *sessions,
		Mix:          *mix,
	}
	r := repro.RunRubis(cfg, *coord)

	fmt.Printf("RUBiS run: coordinated=%v scheme=%s mix=%s sessions=%d duration=%v\n\n",
		*coord, *scheme, *mix, *sessions, *duration)
	fmt.Printf("%-26s %6s %9s %9s %9s %9s\n", "request type", "n", "min(ms)", "avg(ms)", "max(ms)", "stddev")
	for _, t := range r.PerType {
		if t.Count == 0 {
			continue
		}
		fmt.Printf("%-26s %6d %9.0f %9.0f %9.0f %9.0f\n", t.Name, t.Count, t.MinMs, t.AvgMs, t.MaxMs, t.StdDevMs)
	}
	fmt.Printf("\nthroughput: %.1f req/s   sessions: %d (avg %.1fs)   efficiency: %.2f\n",
		r.Throughput, r.SessionsCompleted, r.AvgSessionSec, r.Efficiency)
	fmt.Printf("cpu: web=%.0f%% app=%.0f%% db=%.0f%% dom0=%.0f%% total=%.0f%%\n",
		r.WebUtil, r.AppUtil, r.DBUtil, r.Dom0Util, r.TotalUtil)
	if *coord {
		fmt.Printf("coordination: %d tunes sent, %d applied, final weights %v\n",
			r.TunesSent, r.TunesApplied, r.FinalWeights)
	}
}
