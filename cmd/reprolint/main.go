// Command reprolint runs the repro tree's static-analysis suite: custom
// analyzers that keep the simulation bit-for-bit deterministic and the
// coordination protocol exhaustively handled. It is part of tier-1
// verification and must exit 0 on a clean tree.
//
// Usage:
//
//	reprolint [-list] [-graph] [-disable name,name] [packages...]
//
// With no package arguments it analyzes ./... of the enclosing module.
// Findings print as file:line:col: message (analyzer) and any finding makes
// the exit status 1. With -graph it instead prints the deterministic
// whole-program call graph as sorted DOT and exits. See docs/linting.md for
// the analyzers, their rationale, and the suppression policy.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	graph := flag.Bool("graph", false, "print the whole-program call graph as sorted DOT and exit")
	disable := flag.String("disable", "", "comma-separated analyzer names to skip")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: reprolint [-list] [-graph] [-disable name,name] [packages...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *disable != "" {
		analyzers = filterAnalyzers(analyzers, strings.Split(*disable, ","))
	}

	// The source importer resolves module-local import paths through the
	// go command, which needs the working directory inside the module.
	if err := chdirModuleRoot(); err != nil {
		fatal(err)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader := lint.NewLoader()
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fatal(err)
	}
	if *graph {
		g := lint.BuildGraph(loader.Fset(), pkgs)
		if err := g.WriteDOT(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}
	diags, err := lint.Run(loader.Fset(), pkgs, analyzers)
	if err != nil {
		fatal(err)
	}
	cwd, _ := os.Getwd()
	for _, d := range diags {
		pos := loader.Fset().Position(d.Pos)
		name := pos.Filename
		if rel, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(rel, "..") {
			name = rel
		}
		fmt.Printf("%s:%d:%d: %s (%s)\n", name, pos.Line, pos.Column, d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "reprolint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

func filterAnalyzers(all []*lint.Analyzer, skip []string) []*lint.Analyzer {
	known := map[string]bool{}
	for _, a := range all {
		known[a.Name] = true
	}
	skipSet := map[string]bool{}
	for _, s := range skip {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		if !known[s] {
			fatal(fmt.Errorf("unknown analyzer %q (try -list)", s))
		}
		skipSet[s] = true
	}
	var kept []*lint.Analyzer
	for _, a := range all {
		if !skipSet[a.Name] {
			kept = append(kept, a)
		}
	}
	return kept
}

// chdirModuleRoot walks up from the working directory to the nearest go.mod.
func chdirModuleRoot() error {
	dir, err := os.Getwd()
	if err != nil {
		return err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return os.Chdir(dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return fmt.Errorf("reprolint: no go.mod found above the working directory")
		}
		dir = parent
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "reprolint:", err)
	os.Exit(1)
}
