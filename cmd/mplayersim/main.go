// Command mplayersim runs the MPlayer experiments: stream QoS under weight
// configurations (Figure 6), the buffer-watermark trigger (Figure 7), and
// trigger interference (Table 3).
//
// Usage:
//
//	mplayersim [-exp qos|trigger|interference] [-duration 60s] [-seed N]
//	           [-csv] (trigger: dump the Figure 7 time series as CSV)
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
)

func main() {
	exp := flag.String("exp", "qos", "experiment: qos, trigger, or interference")
	duration := flag.Duration("duration", 0, "simulated run length (0 = experiment default)")
	seed := flag.Int64("seed", 1, "simulation seed")
	csv := flag.Bool("csv", false, "dump Figure 7 series as CSV (trigger only)")
	flag.Parse()

	switch *exp {
	case "qos":
		fmt.Print(repro.FormatFig6(repro.RunMplayerQoS(*seed, *duration)))
	case "trigger":
		base, coord := repro.RunMplayerTrigger(*seed, *duration)
		fmt.Print(repro.FormatFig7(base, coord))
		if *csv {
			fmt.Println("\nseconds,coord_cpu_pct,coord_buffer_bytes")
			n := len(coord.CPUUtil)
			if len(coord.BufferIn) < n {
				n = len(coord.BufferIn)
			}
			for i := 0; i < n; i++ {
				fmt.Printf("%.1f,%.1f,%.0f\n",
					coord.CPUUtil[i].Seconds, coord.CPUUtil[i].Value, coord.BufferIn[i].Value)
			}
		}
	case "interference":
		fmt.Print(repro.FormatTable3(repro.RunMplayerInterference(*seed, *duration)))
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}
