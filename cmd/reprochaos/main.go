// Command reprochaos runs property-guided chaos searches over the
// fault-plan space, shrinks violating scenarios to minimal repros, and
// replays committed corpus entries (see docs/chaos-search.md).
//
// Usage:
//
//	reprochaos search [-seed N] [-budget N] [-workers N] [-duration 16s]
//	                  [-warmup 4s] [-findings N] [-shrink-trials N]
//	                  [-replay] [-cache DIR] [-out DIR]
//	reprochaos shrink -oracle NAME [-max-trials N] [-o FILE] scenario.json
//	reprochaos replay repro.json...
//
// search samples random fault plans crossed with load levels and workload
// kinds, judges every trial with the invariant-oracle catalog, and shrinks
// each violation to a minimal repro; -out writes one ChaosRepro JSON (and
// a .flight recording of the minimized run) per finding. shrink minimizes
// a single scenario known to violate -oracle; the input may be a plain
// scenario or a ChaosRepro (whose oracle then becomes the default).
// replay re-judges corpus entries and exits 1 if any oracle fails —
// committed repros document defenses that now hold.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro"
)

func newFlags(name string) *flag.FlagSet {
	return flag.NewFlagSet(name, flag.ExitOnError)
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "search":
		search(os.Args[2:])
	case "shrink":
		shrink(os.Args[2:])
	case "replay":
		replay(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: reprochaos search|shrink|replay [flags] [files]")
	os.Exit(2)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "reprochaos:", err)
	os.Exit(1)
}

func search(args []string) {
	fs := newFlags("search")
	seed := fs.Int64("seed", 1, "generator seed")
	budget := fs.Int("budget", 16, "number of generated trials")
	workers := fs.Int("workers", 0, "sweep workers (0 = NumCPU; result is identical for any count)")
	duration := fs.Duration("duration", 16*time.Second, "simulated length of each trial")
	warmup := fs.Duration("warmup", 4*time.Second, "measurement warmup of each trial")
	findings := fs.Int("findings", 3, "max violating trials to shrink")
	shrinkTrials := fs.Int("shrink-trials", 48, "max candidate runs per shrink")
	replayOracle := fs.Bool("replay", false, "arm the record->replay divergence oracle on every trial")
	cache := fs.String("cache", "", "content-hash cache directory (skips already-judged trials)")
	out := fs.String("out", "", "write one repro JSON + .flight per finding into this directory")
	fs.Parse(args)
	if fs.NArg() != 0 {
		usage()
	}

	res, err := repro.RunChaosSearch(repro.ChaosSearchOptions{
		Seed:            *seed,
		Budget:          *budget,
		Workers:         *workers,
		Duration:        *duration,
		Warmup:          *warmup,
		MaxFindings:     *findings,
		MaxShrinkTrials: *shrinkTrials,
		Replay:          *replayOracle,
		CacheDir:        *cache,
		Progress: func(done, total int) {
			fmt.Fprintf(os.Stderr, "\rtrial %d/%d", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		},
	})
	if err != nil {
		fail(err)
	}
	fmt.Printf("searched %d trials (seed=%d): %d violating, %d shrunk\n",
		res.Trials, res.Seed, res.Violating, len(res.Findings))
	for i, f := range res.Findings {
		fmt.Printf("  [%d] %s: %s\n", i, f.Oracle, f.Detail)
		fmt.Printf("      trial %s -> minimized in %d steps (%d runs)\n",
			f.Trial.Name, f.ShrinkSteps, f.ShrinkTrials)
		if *out != "" {
			if err := writeFinding(*out, i, f, *seed); err != nil {
				fail(err)
			}
		}
	}
	if len(res.Findings) > 0 {
		os.Exit(1)
	}
}

// writeFinding emits one finding as a corpus-format repro JSON plus a
// flight recording of the minimized run.
func writeFinding(dir string, i int, f repro.ChaosFinding, seed int64) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	name := fmt.Sprintf("finding-%02d-%s", i, f.Oracle)
	rep := repro.ChaosRepro{
		Oracle:   f.Oracle,
		Detail:   f.Detail,
		Found:    fmt.Sprintf("reprochaos search -seed %d", seed),
		Scenario: f.Minimized,
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, name+".json"), append(data, '\n'), 0o644); err != nil {
		return err
	}
	cfg, err := f.Minimized.Compile()
	if err != nil {
		return err
	}
	fl, err := os.Create(filepath.Join(dir, name+".flight"))
	if err != nil {
		return err
	}
	if _, err := repro.RecordRubis(cfg, true, fl); err != nil {
		fl.Close()
		return err
	}
	fmt.Printf("      wrote %s.json + .flight\n", filepath.Join(dir, name))
	return fl.Close()
}

func shrink(args []string) {
	fs := newFlags("shrink")
	oracle := fs.String("oracle", "", "invariant the scenario violates (required unless the input is a repro)")
	maxTrials := fs.Int("max-trials", 48, "max candidate runs")
	out := fs.String("o", "", "write the minimized repro JSON here (default stdout)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	data, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		fail(err)
	}

	var s repro.Scenario
	detail := ""
	if rep, err := repro.ParseChaosRepro(data); err == nil {
		s, detail = rep.Scenario, rep.Detail
		if *oracle == "" {
			*oracle = rep.Oracle
		}
	} else if s, err = repro.ParseScenario(data); err != nil {
		fail(err)
	}
	if *oracle == "" {
		fail(fmt.Errorf("plain scenario input needs -oracle (one of %v)", repro.ChaosOracles()))
	}

	min, steps, trials, err := repro.ShrinkChaosScenario(s, *oracle, *maxTrials)
	if err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "shrunk %q for %s: %d removals accepted over %d runs\n",
		s.Name, *oracle, steps, trials)
	rep := repro.ChaosRepro{
		Oracle:   *oracle,
		Detail:   detail,
		Found:    fmt.Sprintf("reprochaos shrink %s", filepath.Base(fs.Arg(0))),
		Scenario: min,
	}
	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fail(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fail(err)
	}
}

func replay(args []string) {
	fs := newFlags("replay")
	verbose := fs.Bool("v", false, "print every verdict, not just failures")
	fs.Parse(args)
	if fs.NArg() == 0 {
		usage()
	}
	failed := 0
	for _, path := range fs.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fail(err)
		}
		rep, err := repro.ParseChaosRepro(data)
		if err != nil {
			fail(fmt.Errorf("%s: %w", path, err))
		}
		verdicts, err := repro.ReplayChaosRepro(rep)
		if err != nil {
			fail(fmt.Errorf("%s: %w", path, err))
		}
		bad := repro.FailedOracles(verdicts)
		status := "ok"
		if len(bad) > 0 {
			status = "FAIL"
			failed++
		}
		fmt.Printf("%-4s %s (%s)\n", status, path, rep.Oracle)
		for _, v := range verdicts {
			if !v.Ok {
				fmt.Printf("     FAIL %s: %s\n", v.Oracle, v.Detail)
			} else if *verbose {
				state := "ok"
				if v.Skipped {
					state = "skip"
				}
				fmt.Printf("     %-4s %s %s\n", state, v.Oracle, v.Detail)
			}
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}
