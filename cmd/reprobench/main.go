// Command reprobench regenerates every table and figure of the paper's
// evaluation section, printing measured values beside the paper's reported
// numbers.
//
// Usage:
//
//	reprobench [-exp all|fig2|fig4|table1|table2|fig5|fig6|fig7|table3|
//	            powercap|scalability|ablation-latency|ablation-mechanisms|
//	            ablation-threshold|ablation-interrupt|ablation-loss|
//	            ablation-faults] [-seed N] [-quick]
//
// -quick shortens runs by ~4x for smoke testing; published numbers should
// use the defaults.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro"
	"repro/internal/mplayer"
	"repro/internal/sim"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run")
	seed := flag.Int64("seed", 1, "simulation seed")
	quick := flag.Bool("quick", false, "short runs for smoke testing")
	jsonPath := flag.String("json", "", "also write machine-readable results to this file")
	flag.Parse()

	rubisDur := 130 * time.Second
	mediaDur := 60 * time.Second
	trigDur := 180 * time.Second
	if *quick {
		rubisDur, mediaDur, trigDur = 40*time.Second, 20*time.Second, 60*time.Second
	}

	// The RUBiS tables and figures share one base/coordinated pair; compute
	// it lazily so single-experiment invocations of fig6 etc. stay fast.
	collected := &repro.Results{}
	var rubisBase, rubisCoord *repro.RubisRun
	rubisPair := func() (*repro.RubisRun, *repro.RubisRun) {
		if rubisBase == nil {
			fmt.Fprintf(os.Stderr, "running RUBiS base + coordinated (%v simulated each)...\n", rubisDur)
			rubisBase, rubisCoord = repro.CompareRubis(repro.RubisConfig{Seed: *seed, Duration: rubisDur})
			collected.RubisBase, collected.RubisCoord = rubisBase, rubisCoord
		}
		return rubisBase, rubisCoord
	}

	run := map[string]func(){
		"fig2": func() {
			base, _ := rubisPair()
			fmt.Println(repro.FormatFig2(base))
		},
		"fig4": func() {
			base, coord := rubisPair()
			fmt.Println(repro.FormatFig4(base, coord))
		},
		"table1": func() {
			base, coord := rubisPair()
			fmt.Println(repro.FormatTable1(base, coord))
		},
		"table2": func() {
			base, coord := rubisPair()
			fmt.Println(repro.FormatTable2(base, coord))
		},
		"fig5": func() {
			base, coord := rubisPair()
			fmt.Println(repro.FormatFig5(base, coord))
		},
		"fig6": func() {
			collected.MplayerQoS = repro.RunMplayerQoS(*seed, mediaDur)
			fmt.Println(repro.FormatFig6(collected.MplayerQoS))
		},
		"fig7": func() {
			base, coord := repro.RunMplayerTrigger(*seed, trigDur)
			collected.TriggerBase, collected.TriggerCoord = base, coord
			fmt.Println(repro.FormatFig7(base, coord))
		},
		"table3": func() {
			collected.Interference = repro.RunMplayerInterference(*seed, trigDur)
			fmt.Println(repro.FormatTable3(collected.Interference))
		},
		"powercap": func() {
			collected.PowerCap = repro.RunPowerCap(repro.PowerCapConfig{Seed: *seed})
			fmt.Println(repro.FormatPowerCap(collected.PowerCap))
		},
		"scalability": func() {
			collected.Scalability = repro.RunCoordScalability(repro.ScalabilityConfig{Seed: *seed})
			fmt.Println(repro.FormatScalability(collected.Scalability))
		},
		"ablation-latency":    func() { ablationLatency(*seed, rubisDur) },
		"ablation-mechanisms": func() { ablationMechanisms(*seed, rubisDur) },
		"ablation-threshold":  func() { ablationThreshold(*seed, trigDur) },
		"ablation-interrupt":  func() { ablationInterrupt(*seed, rubisDur) },
		"ablation-loss":       func() { ablationLoss(*seed, rubisDur) },
		"ablation-faults":     func() { ablationFaults(*seed, rubisDur) },
	}

	order := []string{"fig2", "fig4", "table1", "table2", "fig5", "fig6", "fig7", "table3",
		"powercap", "scalability", "ablation-latency", "ablation-mechanisms", "ablation-threshold",
		"ablation-interrupt", "ablation-loss", "ablation-faults"}

	writeJSON := func() {
		if *jsonPath == "" {
			return
		}
		data, err := collected.ExportJSON()
		if err != nil {
			fmt.Fprintf(os.Stderr, "json export: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "json export: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "results written to %s\n", *jsonPath)
	}

	if *exp == "all" {
		for _, name := range order {
			fmt.Printf("==== %s ====\n", name)
			run[name]()
		}
		writeJSON()
		return
	}
	fn, ok := run[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; known: all %v\n", *exp, order)
		os.Exit(2)
	}
	fn()
	writeJSON()
}

// ablationLatency sweeps the coordination-channel latency — the paper
// blames PCIe latency for mis-coordination on read/write transitions and
// predicts QPI/HTX-class interconnects would remove it.
func ablationLatency(seed int64, dur time.Duration) {
	fmt.Println("Ablation: coordination-channel latency sweep (RUBiS, coordinated)")
	fmt.Printf("%-12s | %10s %10s %12s\n", "latency", "tput(r/s)", "mean(ms)", "max-type(ms)")
	for _, lat := range []time.Duration{
		5 * time.Microsecond,   // on-chip signalling (the paper's hardware wish)
		150 * time.Microsecond, // the prototype's PCIe mailbox
		20 * time.Millisecond,  // a slow software path
		200 * time.Millisecond, // approaching the workload's phase timescale
		1 * time.Second,        // stale beyond usefulness
	} {
		r := repro.RunRubis(repro.RubisConfig{Seed: seed, Duration: dur, CoordLatency: lat}, true)
		fmt.Printf("%-12v | %10.1f %10.0f %12.0f\n", lat, r.Throughput, r.MeanOverTypes(), r.MaxOverTypes())
	}
}

// ablationMechanisms compares the coordination policy variants.
func ablationMechanisms(seed int64, dur time.Duration) {
	fmt.Println("Ablation: coordination policy variants (RUBiS)")
	fmt.Printf("%-14s | %10s %10s %10s\n", "scheme", "tput(r/s)", "mean(ms)", "efficiency")
	base := repro.RunRubis(repro.RubisConfig{Seed: seed, Duration: dur}, false)
	fmt.Printf("%-14s | %10.1f %10.0f %10.2f\n", "none (base)", base.Throughput, base.MeanOverTypes(), base.Efficiency)
	for _, s := range []repro.CoordScheme{repro.SchemeOutstanding, repro.SchemeLoadTrack, repro.SchemeClass} {
		r := repro.RunRubis(repro.RubisConfig{Seed: seed, Duration: dur, Scheme: s}, true)
		fmt.Printf("%-14s | %10.1f %10.0f %10.2f\n", s, r.Throughput, r.MeanOverTypes(), r.Efficiency)
	}
}

// ablationInterrupt sweeps the IXP's host-interrupt moderation period —
// the "user-defined frequency" of §2.1. Longer periods batch packets into
// fewer Dom0 wakeups at the cost of delivery latency.
func ablationInterrupt(seed int64, dur time.Duration) {
	fmt.Println("Ablation: host interrupt moderation period (RUBiS, coordinated)")
	fmt.Printf("%-12s | %10s %10s\n", "period", "tput(r/s)", "mean(ms)")
	for _, p := range []time.Duration{0, 1 * time.Millisecond, 5 * time.Millisecond, 20 * time.Millisecond} {
		r := repro.RunRubis(repro.RubisConfig{Seed: seed, Duration: dur, IntrModeration: p}, true)
		label := "poll (off)"
		if p > 0 {
			label = p.String()
		}
		fmt.Printf("%-12s | %10.1f %10.0f\n", label, r.Throughput, r.MeanOverTypes())
	}
}

// ablationLoss injects coordination-message loss (fault injection): the
// outstanding-load translation's decay heals drift, so coordination should
// degrade gracefully rather than collapse.
func ablationLoss(seed int64, dur time.Duration) {
	fmt.Println("Ablation: coordination-message loss (RUBiS)")
	fmt.Printf("%-10s | %10s %10s\n", "loss", "tput(r/s)", "mean(ms)")
	base := repro.RunRubis(repro.RubisConfig{Seed: seed, Duration: dur}, false)
	fmt.Printf("%-10s | %10.1f %10.0f\n", "(no coord)", base.Throughput, base.MeanOverTypes())
	for _, rate := range []float64{0, 0.1, 0.3, 0.6} {
		r := repro.RunRubis(repro.RubisConfig{Seed: seed, Duration: dur, CoordLossRate: rate}, true)
		fmt.Printf("%9.0f%% | %10.1f %10.0f\n", rate*100, r.Throughput, r.MeanOverTypes())
	}
}

// ablationFaults runs the coordination plane through a matrix of injected
// fault scenarios, comparing the fragile (fire-and-forget) wiring against
// the reliable plane (ack/retry + heartbeats + graceful degradation). The
// robustness claim: under every scenario the coordinated run with the
// reliable plane stays close to — and under heavy faults degrades
// gracefully toward — the uncoordinated baseline rather than collapsing
// below it.
func ablationFaults(seed int64, dur time.Duration) {
	scenarios := []struct {
		name string
		plan *repro.FaultPlan
	}{
		{"clean", nil},
		{"loss 30%", &repro.FaultPlan{LossRate: 0.3}},
		{"bursts", &repro.FaultPlan{LossRate: 0.05, BurstRate: 0.02, BurstLen: 16}},
		{"chaos mix", &repro.FaultPlan{
			LossRate: 0.15, DupRate: 0.1, ReorderRate: 0.1,
			SpikeRate: 0.05, JitterMax: 100 * time.Microsecond,
		}},
		{"partition", &repro.FaultPlan{Partitions: []repro.Partition{
			{Start: dur / 4, Duration: dur / 4},
		}}},
		{"ixp crash", &repro.FaultPlan{Crashes: []repro.CrashWindow{
			{Island: "ixp", Start: dur / 4, Duration: dur / 8},
		}}},
	}

	fmt.Println("Ablation: fault matrix (RUBiS; fragile vs reliable coordination plane)")
	base := repro.RunRubis(repro.RubisConfig{Seed: seed, Duration: dur}, false)
	fmt.Printf("uncoordinated baseline: %.1f r/s, mean %.0f ms\n\n", base.Throughput, base.MeanOverTypes())
	fmt.Printf("%-12s | %-8s | %9s %9s | %8s %8s %8s %8s\n",
		"scenario", "plane", "tput(r/s)", "mean(ms)", "retrans", "expired", "degrade", "revert")
	for _, sc := range scenarios {
		for _, robust := range []bool{false, true} {
			cfg := repro.RubisConfig{Seed: seed, Duration: dur, Faults: sc.plan, Robust: robust}
			r := repro.RunRubis(cfg, true)
			plane := "fragile"
			if robust {
				plane = "reliable"
			}
			rb := r.Robustness
			fmt.Printf("%-12s | %-8s | %9.1f %9.0f | %8d %8d %8d %8d\n",
				sc.name, plane, r.Throughput, r.MeanOverTypes(),
				rb.Retransmits, rb.Expired, rb.Degradations, rb.BaselineReverts)
		}
	}
}

// ablationThreshold sweeps the Figure 7 trigger watermark.
func ablationThreshold(seed int64, dur time.Duration) {
	fmt.Println("Ablation: buffer-watermark trigger threshold (MPlayer)")
	fmt.Printf("%-10s | %10s %10s\n", "threshold", "dom1 fps", "triggers")
	for _, kb := range []int{32, 64, 128, 256, 384} {
		cfg := mplayer.TriggerConfig{Seed: seed, Threshold: kb << 10, Duration: sim.FromDuration(dur)}
		r := mplayer.RunTriggerExperiment(cfg, true)
		fmt.Printf("%7dKB | %10.1f %10d\n", kb, r.Dom1FPS, r.Triggers)
	}
}
