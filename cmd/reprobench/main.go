// Command reprobench regenerates every table and figure of the paper's
// evaluation section, printing measured values beside the paper's reported
// numbers.
//
// Usage:
//
//	reprobench [-exp all|fig2|fig4|table1|table2|fig5|fig6|fig7|table3|
//	            powercap|scalability|ablation-latency|ablation-mechanisms|
//	            ablation-threshold|ablation-interrupt|ablation-loss|
//	            ablation-faults|ablation-overload|ablation-energy|
//	            ablation-failover|ablation-scenarios|sweep-bench]
//	           [-seed N] [-quick] [-workers N] [-reps N] [-cache DIR]
//	           [-json FILE] [-baseline FILE] [-ignore-wall]
//
// Every ablation matrix fans its trials across a worker pool (-workers,
// default GOMAXPROCS); results are byte-identical for any worker count.
// -reps repeats each point on derived seed substreams and reports
// mean ± 95% CI. -cache enables the content-hash result cache so re-runs
// skip already-computed points.
//
// -exp sweep-bench runs the pinned benchmark sweep and writes its report
// to -json (default BENCH_sweep.json); with -baseline it compares against
// a committed report and exits non-zero on simulated-metric drift, or on
// >±10% trial-throughput change unless -ignore-wall is set.
//
// -quick shortens runs by ~4x for smoke testing; published numbers should
// use the defaults.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro"
	"repro/internal/mplayer"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/sweep"
)

// benchConfig is the flag-derived configuration shared by every
// experiment function: seeds, run lengths, and sweep-engine knobs.
type benchConfig struct {
	seed     int64
	rubisDur time.Duration
	mediaDur time.Duration
	trigDur  time.Duration
	workers  int
	reps     int
	cacheDir string
}

// sweepOptions compiles the engine options for one experiment family,
// wiring progress reporting to stderr.
func (c benchConfig) sweepOptions(name, cacheVersion string) sweep.Options {
	opts := sweep.Options{
		Workers:      c.workers,
		Reps:         c.reps,
		Seed:         c.seed,
		CacheVersion: cacheVersion,
		Progress:     progressPrinter(name),
	}
	if c.cacheDir != "" {
		cache, err := sweep.OpenCache(c.cacheDir)
		if err != nil {
			die(err)
		}
		opts.Cache = cache
	}
	return opts
}

// repro.SweepOptions mirror for facade-level sweeps (the fault matrix).
func (c benchConfig) facadeOptions(name string) repro.SweepOptions {
	return repro.SweepOptions{
		Workers:  c.workers,
		Reps:     c.reps,
		Seed:     c.seed,
		CacheDir: c.cacheDir,
		Progress: progressPrinter(name),
	}
}

// progressPrinter reports sweep progress on stderr (stdout stays
// byte-identical across worker counts).
func progressPrinter(name string) func(p sweep.Progress) {
	return func(p sweep.Progress) {
		fmt.Fprintf(os.Stderr, "\r%s: %d/%d trials (%d cached) %.1fs ",
			name, p.Done, p.Total, p.Cached, p.Elapsed.Seconds())
		if p.Done == p.Total {
			fmt.Fprintln(os.Stderr)
		}
	}
}

func die(err error) {
	fmt.Fprintf(os.Stderr, "reprobench: %v\n", err)
	os.Exit(1)
}

func main() {
	exp := flag.String("exp", "all", "experiment to run")
	seed := flag.Int64("seed", 1, "simulation seed")
	quick := flag.Bool("quick", false, "short runs for smoke testing")
	workers := flag.Int("workers", 0, "sweep worker-pool size (0 = GOMAXPROCS)")
	reps := flag.Int("reps", 1, "repetitions per sweep point (mean ± 95% CI)")
	cacheDir := flag.String("cache", "", "content-hash result cache directory (e.g. .sweepcache; empty = off)")
	jsonPath := flag.String("json", "", "also write machine-readable results to this file")
	baseline := flag.String("baseline", "", "sweep-bench: compare against this committed BENCH_sweep.json")
	ignoreWall := flag.Bool("ignore-wall", false, "sweep-bench: skip the wall-clock throughput comparison")
	flag.Parse()

	cfg := benchConfig{
		seed:     *seed,
		rubisDur: 130 * time.Second,
		mediaDur: 60 * time.Second,
		trigDur:  180 * time.Second,
		workers:  *workers,
		reps:     *reps,
		cacheDir: *cacheDir,
	}
	if *quick {
		cfg.rubisDur, cfg.mediaDur, cfg.trigDur = 40*time.Second, 20*time.Second, 60*time.Second
	}

	if *exp == "sweep-bench" {
		runSweepBench(cfg, *jsonPath, *baseline, *ignoreWall)
		return
	}

	// The RUBiS tables and figures share one base/coordinated pair; compute
	// it lazily so single-experiment invocations of fig6 etc. stay fast.
	collected := &repro.Results{}
	var rubisBase, rubisCoord *repro.RubisRun
	rubisPair := func() (*repro.RubisRun, *repro.RubisRun) {
		if rubisBase == nil {
			fmt.Fprintf(os.Stderr, "running RUBiS base + coordinated (%v simulated each)...\n", cfg.rubisDur)
			rubisBase, rubisCoord = repro.CompareRubis(repro.RubisConfig{Seed: cfg.seed, Duration: cfg.rubisDur})
			collected.RubisBase, collected.RubisCoord = rubisBase, rubisCoord
		}
		return rubisBase, rubisCoord
	}

	run := map[string]func(){
		"fig2": func() {
			base, _ := rubisPair()
			fmt.Println(repro.FormatFig2(base))
		},
		"fig4": func() {
			base, coord := rubisPair()
			fmt.Println(repro.FormatFig4(base, coord))
		},
		"table1": func() {
			base, coord := rubisPair()
			fmt.Println(repro.FormatTable1(base, coord))
		},
		"table2": func() {
			base, coord := rubisPair()
			fmt.Println(repro.FormatTable2(base, coord))
		},
		"fig5": func() {
			base, coord := rubisPair()
			fmt.Println(repro.FormatFig5(base, coord))
		},
		"fig6": func() {
			collected.MplayerQoS = repro.RunMplayerQoS(cfg.seed, cfg.mediaDur)
			fmt.Println(repro.FormatFig6(collected.MplayerQoS))
		},
		"fig7": func() {
			base, coord := repro.RunMplayerTrigger(cfg.seed, cfg.trigDur)
			collected.TriggerBase, collected.TriggerCoord = base, coord
			fmt.Println(repro.FormatFig7(base, coord))
		},
		"table3": func() {
			collected.Interference = repro.RunMplayerInterference(cfg.seed, cfg.trigDur)
			fmt.Println(repro.FormatTable3(collected.Interference))
		},
		"powercap": func() {
			collected.PowerCap = repro.RunPowerCap(repro.PowerCapConfig{Seed: cfg.seed})
			fmt.Println(repro.FormatPowerCap(collected.PowerCap))
		},
		"scalability": func() {
			collected.Scalability = repro.RunCoordScalability(repro.ScalabilityConfig{
				Seed: cfg.seed, Workers: cfg.workers, Reps: cfg.reps,
			})
			fmt.Println(repro.FormatScalability(collected.Scalability))
		},
		"ablation-latency":    func() { ablationLatency(cfg) },
		"ablation-mechanisms": func() { ablationMechanisms(cfg) },
		"ablation-threshold":  func() { ablationThreshold(cfg) },
		"ablation-interrupt":  func() { ablationInterrupt(cfg) },
		"ablation-loss":       func() { ablationLoss(cfg) },
		"ablation-faults":     func() { ablationFaults(cfg) },
		"ablation-overload":   func() { ablationOverload(cfg) },
		"ablation-energy":     func() { ablationEnergy(cfg) },
		"ablation-failover":   func() { ablationFailover(cfg) },
		"ablation-scenarios":  func() { ablationScenarios(cfg) },
	}

	order := []string{"fig2", "fig4", "table1", "table2", "fig5", "fig6", "fig7", "table3",
		"powercap", "scalability", "ablation-latency", "ablation-mechanisms", "ablation-threshold",
		"ablation-interrupt", "ablation-loss", "ablation-faults", "ablation-overload",
		"ablation-energy", "ablation-failover", "ablation-scenarios"}

	writeJSON := func() {
		if *jsonPath == "" {
			return
		}
		data, err := collected.ExportJSON()
		if err != nil {
			die(fmt.Errorf("json export: %w", err))
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			die(fmt.Errorf("json export: %w", err))
		}
		fmt.Fprintf(os.Stderr, "results written to %s\n", *jsonPath)
	}

	if *exp == "all" {
		for _, name := range order {
			fmt.Printf("==== %s ====\n", name)
			run[name]()
		}
		writeJSON()
		return
	}
	fn, ok := run[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; known: all sweep-bench %v\n", *exp, order)
		os.Exit(2)
	}
	fn()
	writeJSON()
}

// runSweepBench executes the pinned benchmark sweep, writes its report,
// and optionally enforces the regression guard against a committed
// baseline: exact on simulated metrics, ±10% on wall-clock trial
// throughput (skippable with -ignore-wall for CI on unknown hardware).
func runSweepBench(cfg benchConfig, jsonPath, baselinePath string, ignoreWall bool) {
	report, err := repro.RunBenchSweep(cfg.workers, progressPrinter("sweep-bench"))
	if err != nil {
		die(err)
	}
	fmt.Printf("sweep-bench: %s — %d trials in %.1fs (%.3f trials/s, %d workers)\n",
		report.Name, report.Trials, report.ElapsedSec, report.TrialsPerSec, report.Workers)

	if jsonPath == "" {
		jsonPath = "BENCH_sweep.json"
	}
	if err := report.Write(jsonPath); err != nil {
		die(err)
	}
	fmt.Fprintf(os.Stderr, "bench report written to %s\n", jsonPath)

	if baselinePath == "" {
		return
	}
	base, err := sweep.LoadBenchReport(baselinePath)
	if err != nil {
		die(err)
	}
	wallTol := 0.10
	if ignoreWall {
		wallTol = 0
	}
	drift, wall := sweep.CompareBench(base, report, wallTol)
	for _, d := range drift {
		fmt.Printf("DRIFT: %s\n", d)
	}
	for _, w := range wall {
		fmt.Printf("WALL:  %s\n", w)
	}
	switch {
	case len(drift) > 0:
		fmt.Println("bench guard FAILED: simulated metrics drifted from the committed baseline")
		os.Exit(1)
	case len(wall) > 0:
		fmt.Println("bench guard FAILED: trial throughput outside ±10% of baseline")
		os.Exit(1)
	default:
		fmt.Println("bench guard OK: simulated metrics exact, throughput within tolerance")
	}
}

// ---------------------------------------------------------------------------
// Ablation matrices. Each is a declarative matrixSpec run through the
// sweep engine: the runner returns one float64 per column, repetitions
// aggregate to mean ± 95% CI, and one shared printer renders the table.

// column is one metric column of an ablation table.
type column struct {
	header string
	format string // fmt verb for one value, e.g. "%10.1f"
}

// matrixSpec declares an ablation: its points, its metric columns, and
// the runner producing one value per column.
type matrixSpec struct {
	name        string // short name for progress lines
	title       string
	cacheFamily string // cache version prefix; bump on model changes
	labelHeader string
	labelWidth  int
	columns     []column
	points      []sweep.Point
	run         func(t sweep.Trial) ([]float64, error)
}

// runMatrix executes the spec's trials across the worker pool and prints
// the aggregated table. Output on stdout is byte-identical for any
// -workers value: trials land in stable point-major order regardless of
// completion order.
func runMatrix(cfg benchConfig, spec matrixSpec) {
	fmt.Println(spec.title)
	header := fmt.Sprintf("%-*s |", spec.labelWidth, spec.labelHeader)
	for _, c := range spec.columns {
		header += " " + c.header
	}
	fmt.Println(header)

	res, err := sweep.Run(spec.points, func(t sweep.Trial) (any, error) {
		return spec.run(t)
	}, cfg.sweepOptions(spec.name, spec.cacheFamily))
	if err != nil {
		die(err)
	}
	if err := res.Err(); err != nil {
		die(err)
	}

	for pi, p := range spec.points {
		means, cis := aggregateValues(res, pi, len(spec.columns))
		row := fmt.Sprintf("%-*s |", spec.labelWidth, p.Name)
		for ci, c := range spec.columns {
			row += " " + formatCell(c.format, means[ci], cis[ci], res.Reps)
		}
		fmt.Println(row)
	}
}

// aggregateValues folds point pi's repetitions into per-column means and
// 95% CI half-widths.
func aggregateValues(res *sweep.RunResult, pi, nCols int) (means, cis []float64) {
	sums := make([]stats.Summary, nCols)
	for rep := 0; rep < res.Reps; rep++ {
		var vals []float64
		if err := res.Decode(pi*res.Reps+rep, &vals); err != nil {
			die(err)
		}
		if len(vals) != nCols {
			die(fmt.Errorf("trial %d returned %d values, want %d", pi*res.Reps+rep, len(vals), nCols))
		}
		for c, v := range vals {
			sums[c].Add(v)
		}
	}
	means = make([]float64, nCols)
	cis = make([]float64, nCols)
	for c := range sums {
		means[c] = sums[c].Mean()
		cis[c] = sums[c].CI95()
	}
	return means, cis
}

// formatCell renders one table cell: the (mean) value in the column's
// format, with a ±CI95 suffix when the sweep ran repetitions.
func formatCell(format string, mean, ci float64, reps int) string {
	cell := fmt.Sprintf(format, mean)
	if reps > 1 {
		cell += fmt.Sprintf("±%.1f", ci)
	}
	return cell
}

// rubisValues is the common runner body for RUBiS ablations: run one
// configuration and project the requested metrics.
func rubisValues(r *repro.RubisRun, project ...func(*repro.RubisRun) float64) []float64 {
	out := make([]float64, len(project))
	for i, f := range project {
		out[i] = f(r)
	}
	return out
}

func tput(r *repro.RubisRun) float64   { return r.Throughput }
func meanMs(r *repro.RubisRun) float64 { return r.MeanOverTypes() }

// ablationLatency sweeps the coordination-channel latency — the paper
// blames PCIe latency for mis-coordination on read/write transitions and
// predicts QPI/HTX-class interconnects would remove it.
func ablationLatency(cfg benchConfig) {
	type pointCfg struct {
		LatencyNs  int64 `json:"latency_ns"`
		DurationNs int64 `json:"duration_ns"`
	}
	var points []sweep.Point
	lats := []time.Duration{
		5 * time.Microsecond,   // on-chip signalling (the paper's hardware wish)
		150 * time.Microsecond, // the prototype's PCIe mailbox
		20 * time.Millisecond,  // a slow software path
		200 * time.Millisecond, // approaching the workload's phase timescale
		1 * time.Second,        // stale beyond usefulness
	}
	for _, lat := range lats {
		points = append(points, sweep.Point{
			Name:   lat.String(),
			Config: pointCfg{LatencyNs: int64(lat), DurationNs: int64(cfg.rubisDur)},
		})
	}
	runMatrix(cfg, matrixSpec{
		name:        "ablation-latency",
		title:       "Ablation: coordination-channel latency sweep (RUBiS, coordinated)",
		cacheFamily: "ablation-latency-v1",
		labelHeader: "latency", labelWidth: 12,
		columns: []column{
			{"tput(r/s)", "%10.1f"}, {"  mean(ms)", "%10.0f"}, {"max-type(ms)", "%12.0f"},
		},
		points: points,
		run: func(t sweep.Trial) ([]float64, error) {
			pc := t.Point.Config.(pointCfg)
			r := repro.RunRubis(repro.RubisConfig{
				Seed: t.Seed, Duration: time.Duration(pc.DurationNs),
				CoordLatency: time.Duration(pc.LatencyNs),
			}, true)
			return rubisValues(r, tput, meanMs, (*repro.RubisRun).MaxOverTypes), nil
		},
	})
}

// ablationMechanisms compares the coordination policy variants, with the
// uncoordinated baseline as the first point of the same matrix.
func ablationMechanisms(cfg benchConfig) {
	type pointCfg struct {
		Scheme     string `json:"scheme"` // "" = uncoordinated baseline
		DurationNs int64  `json:"duration_ns"`
	}
	points := []sweep.Point{{
		Name:   "none (base)",
		Config: pointCfg{DurationNs: int64(cfg.rubisDur)},
	}}
	for _, s := range []repro.CoordScheme{repro.SchemeOutstanding, repro.SchemeLoadTrack, repro.SchemeClass} {
		points = append(points, sweep.Point{
			Name:   string(s),
			Config: pointCfg{Scheme: string(s), DurationNs: int64(cfg.rubisDur)},
		})
	}
	runMatrix(cfg, matrixSpec{
		name:        "ablation-mechanisms",
		title:       "Ablation: coordination policy variants (RUBiS)",
		cacheFamily: "ablation-mechanisms-v1",
		labelHeader: "scheme", labelWidth: 14,
		columns: []column{
			{"tput(r/s)", "%10.1f"}, {"  mean(ms)", "%10.0f"}, {"efficiency", "%10.2f"},
		},
		points: points,
		run: func(t sweep.Trial) ([]float64, error) {
			pc := t.Point.Config.(pointCfg)
			rc := repro.RubisConfig{Seed: t.Seed, Duration: time.Duration(pc.DurationNs)}
			coordinated := pc.Scheme != ""
			if coordinated {
				rc.Scheme = repro.CoordScheme(pc.Scheme)
			}
			r := repro.RunRubis(rc, coordinated)
			return rubisValues(r, tput, meanMs, func(r *repro.RubisRun) float64 { return r.Efficiency }), nil
		},
	})
}

// ablationInterrupt sweeps the IXP's host-interrupt moderation period —
// the "user-defined frequency" of §2.1. Longer periods batch packets into
// fewer Dom0 wakeups at the cost of delivery latency.
func ablationInterrupt(cfg benchConfig) {
	type pointCfg struct {
		PeriodNs   int64 `json:"period_ns"`
		DurationNs int64 `json:"duration_ns"`
	}
	var points []sweep.Point
	for _, p := range []time.Duration{0, 1 * time.Millisecond, 5 * time.Millisecond, 20 * time.Millisecond} {
		label := "poll (off)"
		if p > 0 {
			label = p.String()
		}
		points = append(points, sweep.Point{
			Name:   label,
			Config: pointCfg{PeriodNs: int64(p), DurationNs: int64(cfg.rubisDur)},
		})
	}
	runMatrix(cfg, matrixSpec{
		name:        "ablation-interrupt",
		title:       "Ablation: host interrupt moderation period (RUBiS, coordinated)",
		cacheFamily: "ablation-interrupt-v1",
		labelHeader: "period", labelWidth: 12,
		columns: []column{{"tput(r/s)", "%10.1f"}, {"  mean(ms)", "%10.0f"}},
		points:  points,
		run: func(t sweep.Trial) ([]float64, error) {
			pc := t.Point.Config.(pointCfg)
			r := repro.RunRubis(repro.RubisConfig{
				Seed: t.Seed, Duration: time.Duration(pc.DurationNs),
				IntrModeration: time.Duration(pc.PeriodNs),
			}, true)
			return rubisValues(r, tput, meanMs), nil
		},
	})
}

// ablationLoss injects coordination-message loss (fault injection): the
// outstanding-load translation's decay heals drift, so coordination should
// degrade gracefully rather than collapse.
func ablationLoss(cfg benchConfig) {
	type pointCfg struct {
		Coordinated bool    `json:"coordinated"`
		LossRate    float64 `json:"loss_rate"`
		DurationNs  int64   `json:"duration_ns"`
	}
	points := []sweep.Point{{
		Name:   "(no coord)",
		Config: pointCfg{DurationNs: int64(cfg.rubisDur)},
	}}
	for _, rate := range []float64{0, 0.1, 0.3, 0.6} {
		points = append(points, sweep.Point{
			Name:   fmt.Sprintf("%.0f%%", rate*100),
			Config: pointCfg{Coordinated: true, LossRate: rate, DurationNs: int64(cfg.rubisDur)},
		})
	}
	runMatrix(cfg, matrixSpec{
		name:        "ablation-loss",
		title:       "Ablation: coordination-message loss (RUBiS)",
		cacheFamily: "ablation-loss-v1",
		labelHeader: "loss", labelWidth: 10,
		columns: []column{{"tput(r/s)", "%10.1f"}, {"  mean(ms)", "%10.0f"}},
		points:  points,
		run: func(t sweep.Trial) ([]float64, error) {
			pc := t.Point.Config.(pointCfg)
			r := repro.RunRubis(repro.RubisConfig{
				Seed: t.Seed, Duration: time.Duration(pc.DurationNs),
				CoordLossRate: pc.LossRate,
			}, pc.Coordinated)
			return rubisValues(r, tput, meanMs), nil
		},
	})
}

// ablationThreshold sweeps the Figure 7 trigger watermark.
func ablationThreshold(cfg benchConfig) {
	type pointCfg struct {
		ThresholdKB int   `json:"threshold_kb"`
		DurationNs  int64 `json:"duration_ns"`
	}
	var points []sweep.Point
	for _, kb := range []int{32, 64, 128, 256, 384} {
		points = append(points, sweep.Point{
			Name:   fmt.Sprintf("%dKB", kb),
			Config: pointCfg{ThresholdKB: kb, DurationNs: int64(cfg.trigDur)},
		})
	}
	runMatrix(cfg, matrixSpec{
		name:        "ablation-threshold",
		title:       "Ablation: buffer-watermark trigger threshold (MPlayer)",
		cacheFamily: "ablation-threshold-v1",
		labelHeader: "threshold", labelWidth: 10,
		columns: []column{{"  dom1 fps", "%10.1f"}, {"  triggers", "%10.0f"}},
		points:  points,
		run: func(t sweep.Trial) ([]float64, error) {
			pc := t.Point.Config.(pointCfg)
			r := mplayer.RunTriggerExperiment(mplayer.TriggerConfig{
				Seed: t.Seed, Threshold: pc.ThresholdKB << 10,
				Duration: sim.FromDuration(time.Duration(pc.DurationNs)),
			}, true)
			return []float64{r.Dom1FPS, float64(r.Triggers)}, nil
		},
	})
}

// ablationFaults runs the coordination plane through the canonical fault
// matrix (repro.FaultScenarios), comparing the fragile (fire-and-forget)
// wiring against the reliable plane (ack/retry + heartbeats + graceful
// degradation). The robustness claim: under every scenario the coordinated
// run with the reliable plane stays close to — and under heavy faults
// degrades gracefully toward — the uncoordinated baseline rather than
// collapsing below it.
func ablationFaults(cfg benchConfig) {
	res, err := repro.RunFaultMatrix(
		repro.RubisConfig{Seed: cfg.seed, Duration: cfg.rubisDur},
		cfg.facadeOptions("ablation-faults"),
	)
	if err != nil {
		die(err)
	}

	fmt.Println("Ablation: fault matrix (RUBiS; fragile vs reliable coordination plane)")
	reps := res.Sweep.Reps
	base := aggregateFaultsRows(res.Rows[:reps])
	fmt.Printf("uncoordinated baseline: %s r/s, mean %s ms\n\n",
		formatCell("%.1f", base.Throughput, base.tputCI, reps),
		formatCell("%.0f", base.MeanMs, base.meanCI, reps))
	fmt.Printf("%-18s | %-8s | %9s %9s | %8s %8s %8s %8s %8s\n",
		"scenario", "plane", "tput(r/s)", "mean(ms)", "retrans", "expired", "degrade", "revert", "shed")
	for pi := 1; pi*reps < len(res.Rows); pi++ {
		row := aggregateFaultsRows(res.Rows[pi*reps : (pi+1)*reps])
		fmt.Printf("%-18s | %-8s | %s %s | %s %s %s %s %s\n",
			row.Scenario, row.Plane,
			formatCell("%9.1f", row.Throughput, row.tputCI, reps),
			formatCell("%9.0f", row.MeanMs, row.meanCI, reps),
			formatCell("%8.0f", float64(row.Retransmits), 0, 1),
			formatCell("%8.0f", float64(row.Expired), 0, 1),
			formatCell("%8.0f", float64(row.Degradations), 0, 1),
			formatCell("%8.0f", float64(row.BaselineReverts), 0, 1),
			formatCell("%8.0f", float64(row.Shed), 0, 1))
	}
}

// ablationOverload sweeps the overload-control ablation: no control vs
// bounded tier queues vs the full coordinated plane, at offered-load
// multipliers from 1× to 4× the calibrated population. The claim: past
// saturation, coordinated shedding keeps goodput strictly above no-control
// while holding the served-request p95 bounded instead of letting queueing
// delay grow without limit.
func ablationOverload(cfg benchConfig) {
	res, err := repro.RunOverloadMatrix(
		repro.RubisConfig{Seed: cfg.seed, Duration: cfg.rubisDur},
		cfg.facadeOptions("ablation-overload"),
	)
	if err != nil {
		die(err)
	}

	fmt.Println("Ablation: overload control (RUBiS; none vs bounded vs coordinated)")
	reps := res.Sweep.Reps
	fmt.Printf("%-12s | %5s | %11s %11s | %9s %8s %8s %8s %8s\n",
		"control", "load", "goodput(r/s)", "p95(ms)", "queueshed", "expired", "ixpshed", "abandon", "triggers")
	for pi := 0; pi*reps < len(res.Rows); pi++ {
		row := aggregateOverloadRows(res.Rows[pi*reps : (pi+1)*reps])
		fmt.Printf("%-12s | %4gx | %s %s | %s %s %s %s %s\n",
			row.Control, row.Load,
			formatCell("%11.1f", row.Goodput, row.goodCI, reps),
			formatCell("%11.0f", row.ServedP95Ms, row.p95CI, reps),
			formatCell("%9.0f", float64(row.QueueShed), 0, 1),
			formatCell("%8.0f", float64(row.Expired), 0, 1),
			formatCell("%8.0f", float64(row.IXPShed), 0, 1),
			formatCell("%8.0f", float64(row.Abandoned), 0, 1),
			formatCell("%8.0f", float64(row.Triggers), 0, 1))
	}
}

// ablationEnergy sweeps the energy ablation: no governor vs per-island
// latency-blind ondemand governors vs the coordinated QoS-constrained
// governor, at offered loads from half the calibrated population to 1.5×.
// The claim: at the calibrated 1× point the x86 island reads ~100% busy,
// so utilization-driven governors are frozen at the top frequency — only
// the governor that senses the end-to-end p95 can see that the SLO has
// slack and convert it into platform energy savings.
func ablationEnergy(cfg benchConfig) {
	res, err := repro.RunEnergyMatrix(
		repro.RubisConfig{Seed: cfg.seed, Duration: cfg.rubisDur},
		cfg.facadeOptions("ablation-energy"),
	)
	if err != nil {
		die(err)
	}

	fmt.Println("Ablation: energy governor (RUBiS; off vs ondemand vs coordinated)")
	reps := res.Sweep.Reps
	fmt.Printf("%-12s | %5s | %10s %9s %9s %8s | %8s %7s %6s\n",
		"governor", "load", "joules", "x86(J)", "ixp(J)", "J/req", "p95(ms)", "qosviol", "trans")
	for pi := 0; pi*reps < len(res.Rows); pi++ {
		row := aggregateEnergyRows(res.Rows[pi*reps : (pi+1)*reps])
		fmt.Printf("%-12s | %4gx | %s %s %s %s | %s %4d/%-4d %6d\n",
			row.Governor, row.Load,
			formatCell("%10.1f", row.PlatformJoules, row.jCI, reps),
			formatCell("%9.1f", row.X86Joules, 0, 1),
			formatCell("%9.1f", row.IXPJoules, 0, 1),
			formatCell("%8.3f", row.JoulesPerRequest, 0, 1),
			formatCell("%8.0f", row.ServedP95Ms, row.p95CI, reps),
			row.QoSViolations, row.QoSWindows, row.Transitions)
	}

	// The headline number: coordinated savings over the uncoordinated
	// governors at the calibrated 1× point, valid only while the SLO holds.
	if od, ok1 := res.Row("ondemand", 1); ok1 {
		if co, ok2 := res.Row("coordinated", 1); ok2 && od.PlatformJoules > 0 {
			saving := 100 * (1 - co.PlatformJoules/od.PlatformJoules)
			fmt.Printf("\ncoordinated vs ondemand at 1x: %.1f%% fewer joules (p95 %.0fms vs %.0fms, target %.0fms)\n",
				saving, co.ServedP95Ms, od.ServedP95Ms, float64(repro.DefaultQoSTargetP95/time.Millisecond))
		}
	}
}

// aggregatedEnergy is one energy-matrix point folded across repetitions:
// mean joules/p95 with CI, counters averaged.
type aggregatedEnergy struct {
	repro.EnergyRow
	jCI, p95CI float64
}

func aggregateEnergyRows(rows []repro.EnergyRow) aggregatedEnergy {
	var j, p stats.Summary
	var agg aggregatedEnergy
	agg.EnergyRow = rows[0]
	var x86, ixp, jpr float64
	var viol, win, trans int
	for _, r := range rows {
		j.Add(r.PlatformJoules)
		p.Add(r.ServedP95Ms)
		x86 += r.X86Joules
		ixp += r.IXPJoules
		jpr += r.JoulesPerRequest
		viol += r.QoSViolations
		win += r.QoSWindows
		trans += r.Transitions
	}
	n := float64(len(rows))
	agg.PlatformJoules, agg.jCI = j.Mean(), j.CI95()
	agg.ServedP95Ms, agg.p95CI = p.Mean(), p.CI95()
	agg.X86Joules = x86 / n
	agg.IXPJoules = ixp / n
	agg.JoulesPerRequest = jpr / n
	agg.QoSViolations = viol / len(rows)
	agg.QoSWindows = win / len(rows)
	agg.Transitions = trans / len(rows)
	return agg
}

// aggregatedOverload is one overload-matrix point folded across
// repetitions: mean goodput/p95 with CI, counters averaged.
type aggregatedOverload struct {
	repro.OverloadRow
	goodCI, p95CI float64
}

func aggregateOverloadRows(rows []repro.OverloadRow) aggregatedOverload {
	var g, p stats.Summary
	var agg aggregatedOverload
	agg.OverloadRow = rows[0]
	var qshed, expired, ixp, aband, trig uint64
	for _, r := range rows {
		g.Add(r.Goodput)
		p.Add(r.ServedP95Ms)
		qshed += r.QueueShed
		expired += r.Expired
		ixp += r.IXPShed
		aband += r.Abandoned
		trig += r.Triggers
	}
	n := uint64(len(rows))
	agg.Goodput, agg.goodCI = g.Mean(), g.CI95()
	agg.ServedP95Ms, agg.p95CI = p.Mean(), p.CI95()
	agg.QueueShed = qshed / n
	agg.Expired = expired / n
	agg.IXPShed = ixp / n
	agg.Abandoned = aband / n
	agg.Triggers = trig / n
	return agg
}

// ablationFailover runs the controller-availability matrix
// (repro.FailoverScenarios): a solo controller (checkpointing, nothing to
// fail over to) against a 3-replica group with deterministic election,
// under primary crash and partition windows. The availability claim: with
// replication, a mid-run primary death costs a bounded election window
// (promotions > 0, no-primary drops bounded) instead of losing
// coordination for the rest of the window.
func ablationFailover(cfg benchConfig) {
	res, err := repro.RunFailoverMatrix(
		repro.RubisConfig{Seed: cfg.seed, Duration: cfg.rubisDur},
		cfg.facadeOptions("ablation-failover"),
	)
	if err != nil {
		die(err)
	}

	fmt.Println("Ablation: controller failover (RUBiS; solo vs replicated controller)")
	reps := res.Sweep.Reps
	fmt.Printf("%-18s | %-10s | %9s %9s | %8s %8s %8s %8s %8s\n",
		"scenario", "plane", "tput(r/s)", "mean(ms)", "ckpts", "promote", "stale", "noprim", "shed")
	for pi := 0; pi*reps < len(res.Rows); pi++ {
		row := aggregateFailoverRows(res.Rows[pi*reps : (pi+1)*reps])
		fmt.Printf("%-18s | %-10s | %s %s | %s %s %s %s %s\n",
			row.Scenario, row.Plane,
			formatCell("%9.1f", row.Throughput, row.tputCI, reps),
			formatCell("%9.0f", row.MeanMs, row.meanCI, reps),
			formatCell("%8.0f", float64(row.Checkpoints), 0, 1),
			formatCell("%8.0f", float64(row.Promotions), 0, 1),
			formatCell("%8.0f", float64(row.StaleDropped), 0, 1),
			formatCell("%8.0f", float64(row.NoPrimaryDrops), 0, 1),
			formatCell("%8.0f", float64(row.Shed), 0, 1))
	}
}

// aggregatedFailover is one failover-matrix point folded across
// repetitions.
type aggregatedFailover struct {
	repro.FailoverRow
	tputCI, meanCI float64
}

func aggregateFailoverRows(rows []repro.FailoverRow) aggregatedFailover {
	var t, m stats.Summary
	var agg aggregatedFailover
	agg.FailoverRow = rows[0]
	var ckpts, promote, stale, noprim, shed uint64
	for _, r := range rows {
		t.Add(r.Throughput)
		m.Add(r.MeanMs)
		ckpts += r.Checkpoints
		promote += r.Promotions
		stale += r.StaleDropped
		noprim += r.NoPrimaryDrops
		shed += r.Shed
	}
	n := uint64(len(rows))
	agg.Throughput, agg.tputCI = t.Mean(), t.CI95()
	agg.MeanMs, agg.meanCI = m.Mean(), m.CI95()
	agg.Checkpoints = ckpts / n
	agg.Promotions = promote / n
	agg.StaleDropped = stale / n
	agg.NoPrimaryDrops = noprim / n
	agg.Shed = shed / n
	return agg
}

// ablationScenarios runs the trace-driven scenario matrix
// (repro.ScenarioCatalog): one scenario per generator family, each on the
// base and the coordinated plane. The claim: coordination helps (or at
// worst matches the baseline) across workload shapes the closed-loop
// client cannot express — flash crowds, diurnal curves, heavy-tailed
// sessions, inference serving, and key-value traffic.
func ablationScenarios(cfg benchConfig) {
	res, err := repro.RunScenarioMatrix(
		repro.RubisConfig{Seed: cfg.seed, Duration: cfg.rubisDur},
		cfg.facadeOptions("ablation-scenarios"),
	)
	if err != nil {
		die(err)
	}

	fmt.Println("Ablation: trace-driven scenarios (base vs coordinated plane)")
	reps := res.Sweep.Reps
	fmt.Printf("%-22s | %-5s | %9s %9s %8s | %8s %8s %8s\n",
		"scenario", "plane", "tput(r/s)", "mean(ms)", "sessions", "shed", "abandon", "retrans")
	for pi := 0; pi*reps < len(res.Rows); pi++ {
		row := aggregateScenarioRows(res.Rows[pi*reps : (pi+1)*reps])
		fmt.Printf("%-22s | %-5s | %s %s %s | %s %s %s\n",
			row.Scenario, row.Plane,
			formatCell("%9.1f", row.Throughput, row.tputCI, reps),
			formatCell("%9.0f", row.MeanMs, row.meanCI, reps),
			formatCell("%8.0f", float64(row.Sessions), 0, 1),
			formatCell("%8.0f", float64(row.Shed), 0, 1),
			formatCell("%8.0f", float64(row.Abandoned), 0, 1),
			formatCell("%8.0f", float64(row.Retransmits), 0, 1))
	}
}

// aggregatedScenario is one scenario-matrix point folded across
// repetitions.
type aggregatedScenario struct {
	repro.ScenarioRow
	tputCI, meanCI float64
}

func aggregateScenarioRows(rows []repro.ScenarioRow) aggregatedScenario {
	var t, m stats.Summary
	var agg aggregatedScenario
	agg.ScenarioRow = rows[0]
	var sessions int
	var shed, aband, retrans uint64
	for _, r := range rows {
		t.Add(r.Throughput)
		m.Add(r.MeanMs)
		sessions += r.Sessions
		shed += r.Shed
		aband += r.Abandoned
		retrans += r.Retransmits
	}
	n := len(rows)
	agg.Throughput, agg.tputCI = t.Mean(), t.CI95()
	agg.MeanMs, agg.meanCI = m.Mean(), m.CI95()
	agg.Sessions = sessions / n
	agg.Shed = shed / uint64(n)
	agg.Abandoned = aband / uint64(n)
	agg.Retransmits = retrans / uint64(n)
	return agg
}

// aggregatedFaults is one fault-matrix point folded across repetitions:
// mean throughput/latency with CI, counters averaged (rounded in print).
type aggregatedFaults struct {
	repro.FaultsRow
	tputCI, meanCI float64
}

func aggregateFaultsRows(rows []repro.FaultsRow) aggregatedFaults {
	var t, m stats.Summary
	var agg aggregatedFaults
	agg.FaultsRow = rows[0]
	var retrans, expired, degrade, revert, shed uint64
	for _, r := range rows {
		t.Add(r.Throughput)
		m.Add(r.MeanMs)
		retrans += r.Retransmits
		expired += r.Expired
		degrade += r.Degradations
		revert += r.BaselineReverts
		shed += r.Shed
	}
	n := uint64(len(rows))
	agg.Throughput, agg.tputCI = t.Mean(), t.CI95()
	agg.MeanMs, agg.meanCI = m.Mean(), m.CI95()
	agg.Retransmits = retrans / n
	agg.Expired = expired / n
	agg.Degradations = degrade / n
	agg.BaselineReverts = revert / n
	agg.Shed = shed / n
	return agg
}
